"""The cycle-level simulator shared by TB-STC and every baseline.

One :func:`simulate` call executes one sparse GEMM on one
:class:`~repro.hw.config.ArchConfig`.  The pipeline (Fig. 5(b)):

1. **Block extraction** -- the sparse operand is partitioned into
   ``M x M`` blocks; each block's computation-format segments (per-output
   -row non-zero counts) are derived from the mask.  Architectures
   without a codec cannot consume independent-dimension blocks
   compactly: their aligned storage pads every row of such a block to
   the block's max row occupancy (compute and traffic both inflate).
2. **Intra-block mapping** -- each block's DVPE cycle cost comes from the
   mapping/alternate-unit model (:mod:`repro.hw.dvpe`).
3. **Inter-block scheduling** -- block costs are packed onto the PE array
   either lockstep (direct) or via the sparsity-aware scheduler.
4. **Codec** -- independent-dimension blocks pass through the format
   conversion; only the non-hidden part shows up in the critical path.
5. **Memory** -- the A operand moves in the architecture's storage
   format (traffic model + DRAM model); B is re-streamed once per A
   row-tile (buffer-capacity tiling); D is written once.
6. **Totals** -- compute and memory overlap (double buffering); energy
   integrates MACs, DRAM, SRAM, codec and MBD activity.
"""

from __future__ import annotations

import math
import sys
import warnings
from collections import OrderedDict
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..core.blocks import split_into_blocks
from ..core.patterns import Direction, PatternFamily
from ..formats.base import DEFAULT_ORIENTATION, VALUE_BYTES, EncodeSpec
from ..formats.conversion import batch_conversion_cycles
from ..formats.memory_model import traffic_report
from ..formats.registry import available_formats, format_index, get_format
from ..hw.codec import CodecUnit
from ..hw.config import ArchConfig
from ..hw.dram import DRAMModel
from ..hw.dvpe import DVPE
from ..hw.energy import EnergyModel, EnergyParams
from ..hw.mapping import BlockWork
from ..hw.scheduler import SimStallError, schedule_direct, schedule_sparsity_aware
from ..obs import metrics as obs_metrics
from ..obs.state import enabled as _obs_enabled
from ..perf import stage, use_reference_impl
from ..perf.timers import capture
from ..perf.timers import enabled as _perf_enabled
from ..runtime.checks import check_format_roundtrip, check_workload, get_check_level
from ..workloads.generator import GEMMWorkload
from .metrics import SimResult
from .options import SimOptions

__all__ = ["SimOptions", "simulate", "block_segments", "PIPELINE_FILL_CYCLES"]

#: Fixed pipeline fill/drain cost per layer launch.
PIPELINE_FILL_CYCLES = 64

def _storage_format(name: str, m: int):
    """The simulator's instance of storage format ``name``.

    Resolves through :mod:`repro.formats.registry`; SDC is special-cased
    to the hardware row-group variant (VEGETA/STC align within M-row
    groups rather than the whole matrix -- see the SDCFormat docstring).
    """
    if name == "sdc":
        return get_format("sdc", group_rows=m)
    return get_format(name)


def block_segments(
    workload: GEMMWorkload, config: ArchConfig
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-block computation-format segments as seen by ``config``.

    Returns ``(row_counts, directions)`` with shapes
    ``(n_blocks, m)`` and ``(n_blocks,)`` in block-row-major order.

    * Dense architectures compute every element: all segments are M.
    * Architectures *with* a codec consume independent-dimension blocks
      at their true per-row occupancy (the codec converts the layout).
    * Architectures *without* a codec see independent-dimension blocks
      through row-aligned storage: every row pads to the block's max
      occupancy.
    """
    m = workload.m
    if config.storage_format == "dense":
        n_br = -(-workload.shape[0] // m)
        n_bc = -(-workload.shape[1] // m)
        counts = np.full((n_br * n_bc, m), m, dtype=np.int64)
        dirs = np.full(n_br * n_bc, Direction.ROW.value, dtype=np.int64)
        return counts, dirs

    blocks = split_into_blocks(workload.mask.astype(np.int64), m)
    n_br, n_bc = blocks.shape[:2]
    row_counts = blocks.sum(axis=3).reshape(-1, m)

    if workload.tbs is not None:
        dirs = workload.tbs.block_direction.reshape(-1).copy()
    else:
        dirs = np.full(n_br * n_bc, Direction.ROW.value, dtype=np.int64)

    if workload.tbs is not None and not config.has_codec:
        col_blocks = dirs == Direction.COL.value
        if col_blocks.any():
            maxes = row_counts[col_blocks].max(axis=1, keepdims=True)
            row_counts = row_counts.copy()
            row_counts[col_blocks] = np.broadcast_to(maxes, (int(col_blocks.sum()), m))
    return row_counts, dirs


def _block_costs(
    row_counts: np.ndarray, config: ArchConfig, row_overhead: float = 0.0
):
    """DVPE cycle cost of every block (intra-block mapping model).

    Default: the vectorized :meth:`~repro.hw.dvpe.DVPE.block_costs_batch`
    model, memoized across sweep cells (see :data:`_COST_MEMO`).
    ``REPRO_REFERENCE_IMPL=1`` selects the original per-block loop; both
    return the same values bit-exactly (equivalence suite).
    """
    if use_reference_impl():
        return _block_costs_reference(row_counts, config, row_overhead)
    key = (
        row_counts.tobytes(),
        row_counts.shape,
        config.lanes_per_pe,
        config.output_port_width,
        config.alternate_unit,
        config.alternate_buffer_depth,
        config.intra_block_mapping,
        row_overhead,
    )
    cached = _COST_MEMO.get(key)
    if cached is not None:
        _COST_MEMO.move_to_end(key)
        if _obs_enabled():
            obs_metrics.counter_add("sim.cost_memo.hits")
        return cached
    if _obs_enabled():
        obs_metrics.counter_add("sim.cost_memo.misses")
    pe = DVPE(
        lanes=config.lanes_per_pe,
        output_port_width=config.output_port_width,
        alternate_unit=config.alternate_unit,
        alternate_buffer_depth=config.alternate_buffer_depth,
        intra_block_mapping=config.intra_block_mapping,
    )
    costs = pe.block_costs_batch(row_counts).astype(np.float64)
    if row_overhead:
        # Fractional per-row overhead (pipelined row processing of the
        # CSR-style machines); it aggregates across blocks rather than
        # rounding up per block.
        costs = costs + row_overhead * (row_counts > 0).sum(axis=1)
    costs.setflags(write=False)
    _COST_MEMO[key] = costs
    if len(_COST_MEMO) > _COST_MEMO_SIZE:
        _COST_MEMO.popitem(last=False)
    return costs


def _block_costs_reference(
    row_counts: np.ndarray, config: ArchConfig, row_overhead: float = 0.0
) -> List[int]:
    """Loop-based reference for :func:`_block_costs` (one DVPE per block)."""
    pe = DVPE(
        lanes=config.lanes_per_pe,
        output_port_width=config.output_port_width,
        alternate_unit=config.alternate_unit,
        alternate_buffer_depth=config.alternate_buffer_depth,
        intra_block_mapping=config.intra_block_mapping,
    )
    costs: List[float] = []
    for counts in row_counts:
        work = BlockWork(tuple(int(c) for c in counts), m=len(counts))
        cost = float(pe.block_cost(work))
        if row_overhead:
            cost += row_overhead * float((counts > 0).sum())
        costs.append(cost)
    return costs


#: LRU memo for block-cost vectors, keyed on the mask-derived segment
#: counts plus every ArchConfig field the DVPE cost model reads.  Sweeps
#: (fig13/fig15/fig16) re-simulate the same layer across architectures
#: and sweep axes that share these fields, so repeated cells become a
#: dictionary lookup.  Entries are marked read-only before sharing.
_COST_MEMO: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
_COST_MEMO_SIZE = 256


def clear_cost_memo() -> None:
    """Empty the block-cost memo.

    The sweep engine calls this at each cell boundary when observability
    is on: memo warmth is process-history-dependent, so without the
    reset a cell's hit/miss counters would depend on which worker ran it
    -- and ``--workers N`` metrics would stop being byte-identical to
    serial.  (With obs off the memo is left warm; it is a pure cache and
    never changes results.)
    """
    _COST_MEMO.clear()


#: Codec lane provisioning: 16 lanes x 2 elements/cycle matches the
#: 64 B/cycle (32 FP16 elements) off-chip load rate, so conversion keeps
#: up with the A-operand stream by construction.
CODEC_LANES = 16


def _codec_visible_and_elements(
    workload: GEMMWorkload,
    config: ArchConfig,
    dirs: np.ndarray,
    costs: List[int],
    overlap_cycles: float,
) -> Tuple[int, int]:
    """Visible conversion cycles and converted element count.

    Each independent-dimension block converts *once*, as its payload
    streams in from memory; the codec's aggregate throughput matches the
    memory load rate, so conversion hides behind the longer of the
    A-tensor load and the compute window, and only a throughput
    shortfall (rare) plus the last block's merge beat is exposed
    (Fig. 14: ~3.57% average visible overhead).
    """
    if not config.has_codec or workload.tbs is None:
        return 0, 0
    m = workload.m
    sparse = workload.sparse_values
    blocks = split_into_blocks(sparse, m)
    flat_blocks = blocks.reshape(-1, m, m)
    if use_reference_impl():
        codec = CodecUnit(lanes=m)
        conversion_cycles = 0
        converted = 0
        elements = 0
        for i, direction in enumerate(dirs):
            if direction != Direction.COL.value:
                continue
            stats = codec.process_block(flat_blocks[i], Direction.COL, pe_cycles=costs[i])
            conversion_cycles += stats.conversion_cycles
            converted += stats.converted_blocks
            elements += stats.elements
    else:
        # Batched queue-group emulation: only COL-direction blocks with
        # payload convert; empty ones pass through contributing nothing.
        col_sel = dirs == Direction.COL.value
        col_blocks = flat_blocks[col_sel]
        block_nnz = np.count_nonzero(col_blocks, axis=(1, 2))
        elements = int(block_nnz.sum())
        conv_blocks = col_blocks[block_nnz > 0]
        converted = int(conv_blocks.shape[0])
        conversion_cycles = (
            int(batch_conversion_cycles(conv_blocks, n_queues=m).sum())
            if converted
            else 0
        )
    parallel_conversion = conversion_cycles / CODEC_LANES
    visible = int(math.ceil(max(0.0, parallel_conversion - overlap_cycles)))
    if converted:
        visible += 2  # the final merge beat of the last converted block
    return visible, elements


def _memory_cycles_and_bytes(
    workload: GEMMWorkload,
    config: ArchConfig,
    dram: DRAMModel,
    weight_bits: int = 16,
    ecc=None,
    orientation: str = DEFAULT_ORIENTATION,
) -> Tuple[int, float, Dict[str, float]]:
    """DRAM cycles and traffic for the A, B and D tensors.

    ``weight_bits`` < 16 models quantized weights (Fig. 15(b)): the A
    value payload shrinks proportionally while indices/metadata and the
    activation operands stay FP16.  ``ecc`` charges metadata check-bit
    traffic when the architecture protects its metadata.
    ``orientation`` selects which consumption pass of the *same*
    encoding is traced (forward or transposed -- the backward pass).
    """
    fmt = _storage_format(config.storage_format, workload.m)
    encoded = fmt.encode(
        workload.sparse_values,
        EncodeSpec(
            tbs=workload.tbs if config.storage_format in ("ddc", "bcsrcoo") else None,
            block_size=workload.m,
            orientation=orientation,
        ),
    )
    report = traffic_report(encoded, burst_bytes=config.burst_bytes, m=workload.m, ecc=ecc)
    a_res = dram.transfer_report(report)
    if weight_bits != 16:
        if not 2 <= weight_bits <= 16:
            raise ValueError(f"weight_bits must be in [2, 16], got {weight_bits}")
        # Values shrink; indices and the Info table stay as-is.
        quant_factor = (
            encoded.value_bytes * (weight_bits / 16.0) + encoded.index_bytes + encoded.meta_bytes
        ) / max(1, encoded.total_bytes)
        a_res = dram.transfer(
            a_res.fetched_bytes * quant_factor,
            num_bursts=report.num_bursts,
            contiguous=report.num_segments <= max(1, report.num_bursts // 8),
        )

    rows, cols = workload.shape
    k = workload.b_cols
    # B re-streams once per A row-tile; the tile height is what half the
    # on-chip buffer can hold of the encoded A operand.
    buffer_bytes = config.onchip_buffer_kb * 1024
    a_bytes_per_row = max(1.0, encoded.total_bytes / rows)
    tile_rows = max(workload.m, min(rows, int((buffer_bytes / 2) / a_bytes_per_row)))
    b_reloads = -(-rows // tile_rows)
    b_bytes = cols * k * VALUE_BYTES * b_reloads
    d_bytes = rows * k * VALUE_BYTES
    b_res = dram.transfer(b_bytes, num_bursts=max(1, int(b_bytes // config.burst_bytes)), contiguous=True)
    d_res = dram.transfer(d_bytes, num_bursts=max(1, int(d_bytes // config.burst_bytes)), contiguous=True)

    cycles = a_res.cycles + b_res.cycles + d_res.cycles
    total_bytes = a_res.fetched_bytes + b_bytes + d_bytes
    detail = {
        "a_bytes": float(a_res.fetched_bytes),
        "b_bytes": float(b_bytes),
        "d_bytes": float(d_bytes),
        "a_cycles": float(a_res.cycles),
        "bandwidth_utilization": report.bandwidth_utilization,
        "meta_bytes": float(encoded.meta_bytes),
        "ecc_bytes": float(report.ecc_bytes),
    }
    return cycles, total_bytes, detail


#: (filename, lineno) call-sites that already received the legacy-kwargs
#: DeprecationWarning -- each site warns exactly once per process.
_LEGACY_WARNED_SITES: Set[Tuple[str, int]] = set()

#: The nine-kwarg signature's option names, in their historical order
#: (positional legacy calls are mapped through this).
_LEGACY_OPTION_FIELDS = (
    "energy_params",
    "row_overhead_cycles",
    "weight_bits",
    "ecc",
    "fault",
    "fault_seed",
    "cycle_budget",
)


def _coerce_options(options, legacy_args: tuple, legacy_kwargs: dict) -> SimOptions:
    """Build :class:`SimOptions` from the new or the deprecated calling form.

    The deprecated form (loose ``energy_params=...`` etc. kwargs, or
    extra positionals) still works but emits one
    :class:`DeprecationWarning` per call-site -- enough to migrate by,
    quiet enough not to drown a million-cell sweep.
    """
    legacy = dict(zip(_LEGACY_OPTION_FIELDS, legacy_args))
    for key, value in legacy_kwargs.items():
        if key not in _LEGACY_OPTION_FIELDS:
            raise TypeError(f"simulate() got an unexpected keyword argument {key!r}")
        if key in legacy:
            raise TypeError(f"simulate() got multiple values for argument {key!r}")
        legacy[key] = value
    if not legacy:
        return options if options is not None else SimOptions()
    if options is not None:
        raise TypeError(
            "simulate() takes either options=SimOptions(...) or the deprecated "
            f"loose kwargs, not both (got {sorted(legacy)})"
        )
    frame = sys._getframe(2)
    site = (frame.f_code.co_filename, frame.f_lineno)
    if site not in _LEGACY_WARNED_SITES:
        _LEGACY_WARNED_SITES.add(site)
        fields = ", ".join(f"{name}=..." for name in sorted(legacy))
        warnings.warn(
            f"simulate({fields}) is deprecated; pass "
            f"simulate(config, workload, options=SimOptions({fields})) instead",
            DeprecationWarning,
            stacklevel=3,
        )
    return SimOptions(**legacy)


def simulate(
    config: ArchConfig,
    workload: GEMMWorkload,
    options: Optional[SimOptions] = None,
    *legacy_args,
    **legacy_kwargs,
) -> SimResult:
    """Execute one sparse GEMM on one architecture.

    All knobs beyond (architecture, workload) travel in one frozen
    :class:`~repro.sim.options.SimOptions` value object:

    * ``options.row_overhead_cycles`` models per-non-empty-row processing
      overhead of CSR-style machines (used by the SGCN baseline);
    * ``options.weight_bits`` < 16 models quantized weights (Fig. 15(b));
    * ``options.ecc`` (an :class:`repro.faults.ecc.ECCConfig`) protects
      the storage format's metadata; when None, ``config.metadata_ecc``
      decides.  Protection charges check-bit traffic and ECC energy.
    * ``options.fault`` injects one seeded bit flip into the encoded A
      operand (``'values'`` | ``'indices'`` | ``'metadata'``) and
      classifies the outcome under the ambient :mod:`repro.runtime
      .checks` level; the class lands in
      ``SimResult.fault_classification``.  Timing is reported for the
      fault-free execution.  ``options.fault_seed`` seeds the flip.
    * ``options.cycle_budget`` raises
      :class:`~repro.hw.scheduler.SimStallError` if the modeled
      execution exceeds it -- a runaway guard for sweeps.

    The pre-1.1 loose-kwargs form (``simulate(cfg, wl, weight_bits=8)``)
    still works through a shim that emits one ``DeprecationWarning`` per
    call-site.

    When invariant checking is on (:mod:`repro.runtime.checks`), the
    workload mask is validated against its declared pattern family, and
    under ``strict`` the architecture's storage format is additionally
    round-tripped (encode -> decode must be exact) before simulation.

    When stage timing is enabled (:func:`repro.perf.timers.enable`), the
    per-stage wall-time split of this call lands in
    ``SimResult.perf_breakdown``; with timing off the instrumentation
    reduces to one boolean check.

    When observability is enabled (:func:`repro.obs.enable`), the
    deterministic metrics recorded inside this call (memo hit rates,
    wave-cycle histograms, stall causes, ...) land in
    ``SimResult.metrics`` as a versioned dict, and every pipeline stage
    is traced as a span; with it off (the default) ``metrics`` stays
    ``None`` and outputs are byte-identical to an uninstrumented build.
    """
    if isinstance(options, SimOptions) or options is None:
        opts = _coerce_options(options, legacy_args, legacy_kwargs)
    else:
        # Positional legacy call: the third positional used to be
        # energy_params; shift it into the legacy tuple.
        opts = _coerce_options(None, (options,) + legacy_args, legacy_kwargs)
    if not _perf_enabled() and not _obs_enabled():
        return _simulate(config, workload, opts)
    if not _obs_enabled():
        result = _timed_simulate(config, workload, opts)
        return result
    # Metrics capture swaps in a fresh registry, so the obs payload is the
    # exact per-call delta; timer records made inside are merged back to
    # the ambient registry at exit (obs.metrics.capture docs).
    mcap = obs_metrics.capture()
    with mcap as metrics:
        obs_metrics.counter_add("sim.simulate_calls")
        result = _timed_simulate(config, workload, opts)
    result.metrics = metrics
    return result


def _timed_simulate(
    config: ArchConfig, workload: GEMMWorkload, opts: SimOptions
) -> SimResult:
    """Run :func:`_simulate` under the stage-timer/tracer envelope."""
    if not _perf_enabled():
        with stage("sim.engine.simulate"):
            return _simulate(config, workload, opts)
    cap = capture()
    with cap as stages:
        with stage("sim.engine.simulate"):
            result = _simulate(config, workload, opts)
    result.perf_breakdown = stages
    return result


def _simulate(
    config: ArchConfig,
    workload: GEMMWorkload,
    options: SimOptions,
) -> SimResult:
    """Pipeline body of :func:`simulate` (timing-agnostic)."""
    energy_params = options.energy_params
    row_overhead_cycles = options.row_overhead_cycles
    weight_bits = options.weight_bits
    ecc = options.ecc
    fault = options.fault
    fault_seed = options.fault_seed
    cycle_budget = options.cycle_budget
    level = get_check_level()
    if level != "off":
        check_workload(workload, context=f"simulate:{workload.name}")
        if level == "strict" and config.storage_format in available_formats():
            check_format_roundtrip(
                get_format(config.storage_format),
                workload.values,
                mask=workload.mask,
                tbs=workload.tbs,
                block_size=workload.m,
                context=f"simulate:{workload.name}",
            )
    if ecc is None and config.metadata_ecc != "none":
        from ..faults.ecc import ECCConfig

        ecc = ECCConfig(mode=config.metadata_ecc)
    fault_classification = _classify_fault(config, workload, fault, fault_seed, ecc)
    params = energy_params or EnergyParams()
    with stage("sim.block_segments"):
        row_counts, dirs = block_segments(workload, config)
    with stage("sim.block_costs"):
        costs = _block_costs(row_counts, config, row_overhead=row_overhead_cycles)

    # Small layers cannot fill the PE array with blocks alone; replicate
    # tasks across B-column tiles so spatial parallelism is preserved.
    n_blocks = len(costs)
    if _obs_enabled():
        obs_metrics.counter_add("sim.blocks", n_blocks)
    k = workload.b_cols
    replication = 1
    if n_blocks < 2 * config.num_pes and k > 1:
        replication = min(k, max(1, math.ceil(2 * config.num_pes / max(1, n_blocks))))
    if isinstance(costs, np.ndarray):
        # list * n concatenates; ndarray * n scales -- tile explicitly.
        task_costs = np.tile(costs, replication) if replication > 1 else costs
    else:
        task_costs = costs * replication
    column_passes = k / replication

    with stage("sim.schedule"):
        if config.inter_block_scheduling:
            sched = schedule_sparsity_aware(
                task_costs, config.num_pes, window=config.scheduler_window
            )
        else:
            sched = schedule_direct(task_costs, config.num_pes)
    compute_cycles = int(math.ceil(sched.makespan * column_passes))

    dram = DRAMModel(
        bandwidth_gbs=config.dram_bandwidth_gbs,
        frequency_ghz=config.frequency_ghz,
        burst_bytes=config.burst_bytes,
        byte_pj=params.dram_byte_pj,
    )
    with stage("sim.memory"):
        memory_cycles, dram_bytes, mem_detail = _memory_cycles_and_bytes(
            workload, config, dram, weight_bits=weight_bits, ecc=ecc,
            orientation=options.orientation,
        )

    with stage("sim.codec"):
        codec_visible, codec_elements = _codec_visible_and_elements(
            workload,
            config,
            dirs,
            costs,
            overlap_cycles=max(mem_detail["a_cycles"], float(compute_cycles)),
        )

    total_cycles = max(compute_cycles, memory_cycles) + codec_visible + PIPELINE_FILL_CYCLES
    if cycle_budget is not None and total_cycles > cycle_budget:
        raise SimStallError(
            f"simulation of {workload.name!r} on {config.name!r} exceeded its cycle budget",
            cause="cycle_budget",
            state={
                "total_cycles": total_cycles,
                "cycle_budget": cycle_budget,
                "compute_cycles": compute_cycles,
                "memory_cycles": memory_cycles,
                "codec_visible": codec_visible,
                "n_blocks": n_blocks,
            },
        )

    # --- energy ---
    if config.storage_format == "dense":
        macs = workload.dense_macs
    else:
        macs = int(row_counts.sum()) * k  # padded slots are real work too
    mbd_elements = workload.nnz * k if config.has_mbd else 0
    sram_bytes = 2.0 * dram_bytes  # buffer fill + drain
    n_ecc_words = 0
    if ecc is not None and getattr(ecc, "enabled", False):
        from ..faults.ecc import ecc_words

        n_ecc_words = ecc_words(mem_detail["meta_bytes"], ecc)
    with stage("sim.energy"):
        energy = EnergyModel(config, params).report(
            cycles=total_cycles,
            macs=macs,
            dram_bytes=dram_bytes,
            sram_bytes=sram_bytes,
            codec_elements=codec_elements,
            mbd_elements=mbd_elements,
            ecc_words=n_ecc_words,
        )

    peak = config.peak_macs_per_cycle
    useful_macs = workload.macs if config.storage_format != "dense" else workload.dense_macs
    # Computation utilization is measured over the PE array's busy window
    # (the Sec. VI / Fig. 16(b) metric), not diluted by memory stalls.
    compute_util = useful_macs / (compute_cycles * peak) if compute_cycles else 1.0
    breakdown = {
        "compute": float(compute_cycles),
        "memory": float(memory_cycles),
        "codec_visible": float(codec_visible),
        "pipeline_fill": float(PIPELINE_FILL_CYCLES),
        **mem_detail,
    }
    return SimResult(
        arch=config.name,
        workload=workload.name,
        cycles=total_cycles,
        compute_cycles=compute_cycles,
        memory_cycles=memory_cycles,
        codec_visible_cycles=codec_visible,
        macs=macs,
        dram_bytes=dram_bytes,
        energy=energy,
        compute_utilization=min(1.0, compute_util),
        bandwidth_utilization=mem_detail["bandwidth_utilization"],
        frequency_ghz=config.frequency_ghz,
        breakdown=breakdown,
        fault_classification=fault_classification,
    )


def _classify_fault(
    config: ArchConfig,
    workload: GEMMWorkload,
    fault: Optional[str],
    fault_seed: int,
    ecc,
) -> Optional[str]:
    """Inject one seeded flip into the encoded A operand and classify it.

    The classification runs under the ambient check level: with checks
    ``off`` only decode crashes are caught, so coverage numbers directly
    reflect how much the invariant layer buys.  Returns None when no
    fault was requested or the format has no such target.
    """
    if fault is None:
        return None
    from ..core.patterns import PatternSpec
    from ..faults import classify_decode, inject_payload_bitflips, payload_targets

    fmt_name = config.storage_format
    if fmt_name not in available_formats() or fault not in payload_targets(fmt_name):
        return None
    fmt = _storage_format(fmt_name, workload.m)
    encoded = fmt.encode(
        workload.sparse_values,
        EncodeSpec(
            tbs=workload.tbs if fmt_name in ("ddc", "bcsrcoo") else None,
            block_size=workload.m,
        ),
    )
    rng = np.random.default_rng([fault_seed, format_index(fmt_name)])
    record = inject_payload_bitflips(encoded, fault, rng)
    if not record.injected:
        return None
    pattern_spec = None
    if workload.family is not PatternFamily.US:
        pattern_spec = PatternSpec(
            workload.family, m=workload.m, sparsity=min(1.0, max(0.0, workload.sparsity))
        )
    return classify_decode(
        fmt, encoded, workload.sparse_values, record, ecc=ecc, pattern_spec=pattern_spec
    )
