"""Execution-cycle breakdown (Fig. 14).

Decomposes a :class:`~repro.sim.metrics.SimResult` into the stage shares
the paper plots for the BERT layer-9 GEMMs: compute, exposed memory,
visible format conversion (codec) and pipeline fill.  Overlapped work is
attributed to the stage on the critical path, matching how the paper's
plot can show the codec at only ~3.57% despite converting every
independent-dimension block.
"""

from __future__ import annotations

from typing import Dict

from .metrics import SimResult

__all__ = ["cycle_breakdown", "codec_overhead_fraction"]


def cycle_breakdown(result: SimResult) -> Dict[str, float]:
    """Fraction of total cycles attributed to each pipeline stage.

    Compute and memory overlap under double buffering, so the dominant
    one owns the overlapped region and the other contributes only its
    exposed remainder.
    """
    total = max(1, result.cycles)
    compute = result.compute_cycles
    memory = result.memory_cycles
    if compute >= memory:
        compute_share = compute
        memory_share = 0.0
    else:
        compute_share = compute
        memory_share = memory - compute
    codec = result.codec_visible_cycles
    fill = result.breakdown.get("pipeline_fill", 0.0)
    other = max(0.0, total - compute_share - memory_share - codec - fill)
    return {
        "compute": compute_share / total,
        "memory_exposed": memory_share / total,
        "format_conversion": codec / total,
        "pipeline_fill": fill / total,
        "other": other / total,
    }


def codec_overhead_fraction(result: SimResult) -> float:
    """Visible format-conversion share of the execution (Fig. 14: ~3.57%)."""
    return result.codec_visible_cycles / max(1, result.cycles)
