"""Per-architecture simulation entry points.

Thin wrappers around :func:`repro.sim.engine.simulate` that bundle each
baseline's configuration quirks (SGCN's per-row overhead, STC's 4:8
pattern pinning handled by the workload generator) and a sweep helper
that runs one layer across the whole baseline set the way the Fig. 12
experiments do.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from ..core.patterns import PatternFamily
from ..hw.config import ArchConfig, dvpe_fan, highlight, rm_stc, sgcn, stc, tb_stc, tensor_core, vegeta
from ..hw.energy import EnergyParams
from ..workloads.generator import GEMMWorkload, build_workload
from ..workloads.layers import LayerSpec
from .engine import simulate
from .metrics import SimResult
from .options import SimOptions

__all__ = [
    "ARCH_FAMILY",
    "ARCH_ROW_OVERHEAD",
    "simulate_arch",
    "simulate_layer_sweep",
    "arch_by_name",
]

#: Which pattern family each architecture prunes with (its native mask).
ARCH_FAMILY: Dict[str, PatternFamily] = {
    "TC": PatternFamily.US,  # dense compute; mask irrelevant but keep US stats
    "STC": PatternFamily.TS,
    "VEGETA": PatternFamily.RS_V,
    "HighLight": PatternFamily.RS_H,
    "RM-STC": PatternFamily.US,
    "SGCN": PatternFamily.US,
    "TB-STC": PatternFamily.TBS,
    "DVPE+FAN": PatternFamily.TBS,
}

_FACTORIES = {
    "TC": tensor_core,
    "STC": stc,
    "VEGETA": vegeta,
    "HighLight": highlight,
    "RM-STC": rm_stc,
    "SGCN": sgcn,
    "TB-STC": tb_stc,
    "DVPE+FAN": dvpe_fan,
}


def arch_by_name(name: str, **overrides) -> ArchConfig:
    """Look up a baseline configuration by its paper name."""
    try:
        return _FACTORIES[name](**overrides)
    except KeyError:
        raise ValueError(f"unknown architecture {name!r}; have {sorted(_FACTORIES)}") from None


#: Per-non-empty-row cycle overhead each baseline's front-end pays (the
#: CSR-style row-pipelining model; zero for block-native machines).
ARCH_ROW_OVERHEAD: Dict[str, float] = {"SGCN": 0.15, "RM-STC": 0.05, "DVPE+FAN": 0.2}


def simulate_arch(
    config: ArchConfig,
    workload: GEMMWorkload,
    options: Optional[SimOptions] = None,
    energy_params: Optional[EnergyParams] = None,
) -> SimResult:
    """Simulate with the architecture-specific knobs applied.

    ``options`` carries any extra simulation knobs; the baseline's own
    row-overhead model is layered on top unless the caller already set
    one explicitly.
    """
    opts = options if options is not None else SimOptions()
    if energy_params is not None:
        opts = replace(opts, energy_params=energy_params)
    if opts.row_overhead_cycles == 0.0:
        overhead = ARCH_ROW_OVERHEAD.get(config.name, 0.0)
        if overhead:
            opts = replace(opts, row_overhead_cycles=overhead)
    return simulate(config, workload, options=opts)


def simulate_layer_sweep(
    layer: LayerSpec,
    sparsity: float,
    arch_names: Optional[List[str]] = None,
    m: int = 8,
    seed: int = 0,
    scale: int = 4,
) -> Dict[str, SimResult]:
    """One layer at one sparsity degree across architectures (Fig. 12).

    Each architecture receives the mask its own pattern family produces
    at the requested sparsity (iso-sparsity protocol; STC saturates at
    4:8 per the paper's footnote).
    """
    if arch_names is None:
        arch_names = ["TC", "STC", "VEGETA", "HighLight", "RM-STC", "TB-STC"]
    results: Dict[str, SimResult] = {}
    for name in arch_names:
        config = arch_by_name(name)
        family = ARCH_FAMILY[name]
        workload = build_workload(layer, family, sparsity, m=m, seed=seed, scale=scale)
        results[name] = simulate_arch(config, workload)
    return results
