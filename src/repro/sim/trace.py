"""Schedule tracing and ASCII timeline rendering.

A debugging/teaching aid on top of the inter-block scheduler: capture
where every block ran and render the PE array's occupancy as a compact
Gantt chart -- the picture Fig. 11(a)/(b) draws by hand.

Example::

    from repro.sim.trace import trace_schedule, render_timeline
    trace = trace_schedule([4, 1, 4, 1, 2], num_pes=2, policy="aware")
    print(render_timeline(trace))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..hw.scheduler import Assignment, ScheduleResult, schedule_direct, schedule_sparsity_aware

__all__ = ["ScheduleTrace", "trace_schedule", "render_timeline", "occupancy_profile"]


@dataclass(frozen=True)
class ScheduleTrace:
    """A recorded schedule plus the policy that produced it."""

    policy: str
    result: ScheduleResult

    @property
    def assignments(self) -> Sequence[Assignment]:
        return self.result.assignments

    @property
    def makespan(self) -> int:
        return self.result.makespan

    @property
    def utilization(self) -> float:
        return self.result.utilization


def trace_schedule(
    costs: Sequence[int], num_pes: int, policy: str = "aware", window: int = 8
) -> ScheduleTrace:
    """Schedule with placement recording.

    ``policy`` is ``"aware"`` (sparsity-aware, Fig. 11(b)) or
    ``"direct"`` (lockstep waves, Fig. 11(a)).
    """
    if policy == "aware":
        result = schedule_sparsity_aware(costs, num_pes, window=window, record=True)
    elif policy == "direct":
        result = schedule_direct(costs, num_pes, record=True)
    else:
        raise ValueError(f"unknown policy {policy!r}; use 'aware' or 'direct'")
    return ScheduleTrace(policy, result)


def occupancy_profile(trace: ScheduleTrace, resolution: int = 1) -> List[int]:
    """Busy-PE count per time step (integrated utilization curve)."""
    if resolution < 1:
        raise ValueError("resolution must be positive")
    steps = int(trace.makespan // resolution) + 1
    profile = [0] * steps
    for a in trace.assignments:
        lo = int(a.start // resolution)
        hi = int(max(a.start, a.end - 1e-9) // resolution)
        for t in range(lo, min(hi + 1, steps)):
            profile[t] += 1
    return profile


_GLYPHS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"


def render_timeline(trace: ScheduleTrace, width: int = 72) -> str:
    """ASCII Gantt chart: one row per PE, one glyph per block.

    Long schedules are horizontally compressed to ``width`` columns;
    idle time renders as ``.``.
    """
    makespan = max(1, trace.makespan)
    scale = min(1.0, width / makespan)
    cols = max(1, int(makespan * scale))
    rows = [["."] * cols for _ in range(trace.result.num_pes)]
    for a in trace.assignments:
        glyph = _GLYPHS[a.block % len(_GLYPHS)]
        lo = int(a.start * scale)
        hi = max(lo + 1, int(a.end * scale))
        for t in range(lo, min(hi, cols)):
            rows[a.pe][t] = glyph
    lines = [
        f"{trace.policy} schedule: makespan={trace.makespan}, "
        f"utilization={trace.utilization:.1%}"
    ]
    for pe, row in enumerate(rows):
        lines.append(f"PE{pe:<3d} |{''.join(row)}|")
    return "\n".join(lines)
