"""Functional simulator: compute SpMM *through* the TB-STC datapath.

Where :mod:`repro.sim.engine` models timing and energy, this module
executes the actual arithmetic along the architecture's data path and
checks it against ``D = A @ B``:

1. the sparse operand is encoded block-by-block in DDC storage order;
2. independent-dimension blocks pass through the codec's queue-group
   conversion (:func:`repro.formats.conversion.convert_block`) to reach
   computation format;
3. the MBD unit gathers the rows of B selected by each element's
   reduction-dimension index (with the transpose-array path for
   column-major blocks);
4. the DVPE multiplies lane-wise and its reduction nodes accumulate per
   output row, following the intra-block packed schedule
   (:func:`repro.hw.mapping.map_balanced`);
5. partial results accumulate into D across the block columns.

Exact agreement with dense ``A @ B`` is asserted by the integration
tests: it proves the format, conversion, gather and reduction models are
mutually consistent -- the property that makes the cycle model's
utilization numbers meaningful.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.blocks import extract_block, iter_blocks
from ..core.patterns import Direction
from ..core.sparsify import TBSResult
from ..formats.conversion import block_storage_stream, convert_block
from ..hw.mbd import MBDUnit
from ..workloads.generator import GEMMWorkload

__all__ = ["functional_spmm", "functional_block_product"]


def functional_block_product(
    block: np.ndarray,
    b_tile: np.ndarray,
    direction: Direction,
    mbd: Optional[MBDUnit] = None,
) -> np.ndarray:
    """One block's contribution to D via the storage->codec->MBD->DVPE path.

    ``block`` is the ``m x m`` sparse tile of A; ``b_tile`` is the
    aligned ``m x k`` slice of B.  Returns the ``m x k`` partial result.
    """
    block = np.asarray(block, dtype=np.float64)
    b_tile = np.asarray(b_tile, dtype=np.float64)
    m = block.shape[0]
    if block.shape != (m, m):
        raise ValueError(f"expected a square block, got {block.shape}")
    if b_tile.shape[0] != m:
        raise ValueError("B tile height must match the block size")
    mbd = mbd or MBDUnit(tile=m)

    # Storage order -> computation order.  ROW blocks stream straight
    # through (Fig. 9(a)); COL blocks run the queue-group conversion.
    stream = block_storage_stream(block, direction)
    if direction is Direction.COL:
        schedule = convert_block(stream, n_queues=m)
        elements = [e for beat in schedule.outputs for e in beat]
    else:
        elements = list(stream)

    partial = np.zeros((m, b_tile.shape[1]))
    if not elements:
        return partial
    # MBD gathers the B rows the non-zeros select; the DVPE multiplies
    # and its reduction nodes accumulate into each element's output row.
    rids = [e.rid for e in elements]
    gathered, _ = mbd.gather(b_tile, rids, direction)
    for element, b_row in zip(elements, gathered):
        partial[element.iid] += element.value * b_row
    return partial


def functional_spmm(
    a_sparse: np.ndarray,
    b: np.ndarray,
    tbs: Optional[TBSResult] = None,
    m: int = 8,
) -> np.ndarray:
    """Compute ``D = A @ B`` through the full TB-STC functional path."""
    a_sparse = np.asarray(a_sparse, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a_sparse.ndim != 2 or b.ndim != 2:
        raise ValueError("operands must be 2-D")
    if a_sparse.shape[1] != b.shape[0]:
        raise ValueError(
            f"reduction-dim mismatch: A is {a_sparse.shape}, B is {b.shape}"
        )
    if tbs is not None:
        m = tbs.m

    rows, cols = a_sparse.shape
    k = b.shape[1]
    d = np.zeros((rows, k))
    mbd = MBDUnit(tile=m)
    for idx in iter_blocks(rows, cols, m):
        block = extract_block(a_sparse, idx, m)
        if not block.any():
            continue
        # The direction picks the storage layout (and hence whether the
        # codec converts); correctness holds for any assignment, so
        # non-TBS inputs default to the passthrough row-major layout.
        if tbs is not None:
            direction = Direction(int(tbs.block_direction[idx.row, idx.col]))
        else:
            direction = Direction.ROW
        b_tile = np.zeros((m, k))
        height = min(m, cols - idx.c0)
        b_tile[:height] = b[idx.c0 : idx.c0 + height]
        partial = functional_block_product(block, b_tile, direction, mbd=mbd)
        d[idx.r0 : idx.r0 + idx.height] += partial[: idx.height]
    return d


def verify_workload(workload: GEMMWorkload, seed: int = 0, atol: float = 1e-9) -> float:
    """Run a workload's SpMM through the functional path and return the
    max absolute error against the dense reference."""
    rng = np.random.default_rng(seed)
    b = rng.normal(size=(workload.shape[1], workload.b_cols))
    sparse = workload.sparse_values
    reference = sparse @ b
    result = functional_spmm(sparse, b, tbs=workload.tbs, m=workload.m)
    err = float(np.abs(result - reference).max())
    if err > atol:
        raise AssertionError(f"functional SpMM diverged: max err {err}")
    return err
