"""Lightweight hierarchical stage timers (``perf_counter_ns`` based).

Since the observability layer landed this module is a **thin adapter**
over :mod:`repro.obs`: the ``name -> [calls, total_ns]`` storage lives
in the obs metrics registry (its ``timers`` section, excluded from the
deterministic cross-process export), and ``stage()``/``timed()`` are
**dual-sink** -- when the obs switch is on they additionally emit B/E
trace spans, so every ``@timed`` hot path (DVPE batches, format
encodes, engine stages) shows up in the Chrome trace without a second
set of instrumentation sites.  The public API and its semantics are
unchanged; ``tests/perf/test_timers.py`` pins them.

Design constraints:

* **Zero overhead when disabled.**  With both the timing flag and the
  obs switch off, ``stage(name)`` returns a shared no-op context
  manager and ``timed(name)`` wrappers reduce to two boolean checks, so
  instrumentation can stay wired into hot paths permanently.
* **Nesting-safe.**  Stages aggregate by name; a stage timed inside
  another contributes to both (the parent's total includes the child's),
  which is the natural reading of a per-stage wall-time split.
* **Diff-able.**  :class:`capture` snapshots the registry on entry and
  yields only the *delta* recorded inside its block, which is how
  ``simulate()`` attaches a per-call ``SimResult.perf_breakdown``.

The registry is process-global and not thread-safe; the simulator and
benchmark suite are single-threaded by construction.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, Dict

from ..obs import metrics as _metrics
from ..obs import state as _obs_state
from ..obs import tracer as _tracer

__all__ = [
    "capture",
    "disable",
    "enable",
    "enabled",
    "enabled_scope",
    "reset",
    "snapshot",
    "stage",
    "timed",
]

_enabled = False


def enabled() -> bool:
    """Whether stage timing is currently collecting."""
    return _enabled


def enable() -> None:
    """Turn stage timing on (records accumulate until :func:`reset`)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn stage timing off; existing records are kept."""
    global _enabled
    _enabled = False


def reset() -> None:
    """Drop every accumulated stage record."""
    _metrics.current_timers().clear()


class _StageTimer:
    """Times one region into the registry and/or traces it as a span."""

    __slots__ = ("name", "start", "_timing", "_span")

    def __init__(self, name: str, timing: bool, tracing: bool):
        self.name = name
        self._timing = timing
        self._span = _tracer.span(name) if tracing else None

    def __enter__(self) -> "_StageTimer":
        if self._span is not None:
            self._span.__enter__()
        if self._timing:
            self.start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> bool:
        if self._timing:
            _metrics.timer_add(self.name, time.perf_counter_ns() - self.start)
        if self._span is not None:
            self._span.__exit__(*exc)
        return False


class _NullTimer:
    """Shared do-nothing context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL = _NullTimer()


def stage(name: str):
    """Context manager timing one region under ``name`` (no-op when off).

    Dual-sink: wall time goes to the registry when timing is enabled,
    and a B/E trace span is emitted when observability is enabled.
    """
    tracing = _obs_state.enabled()
    if not (_enabled or tracing):
        return _NULL
    return _StageTimer(name, _enabled, tracing)


def timed(name: str) -> Callable:
    """Decorator timing every call of the wrapped function under ``name``."""

    def deco(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tracing = _obs_state.enabled()
            if not (_enabled or tracing):
                return fn(*args, **kwargs)
            with _StageTimer(name, _enabled, tracing):
                return fn(*args, **kwargs)

        return wrapper

    return deco


def snapshot() -> Dict[str, Dict[str, float]]:
    """Current totals: ``{stage: {"calls": n, "seconds": s}}``."""
    return {
        name: {"calls": rec[0], "seconds": rec[1] / 1e9}
        for name, rec in _metrics.current_timers().items()
    }


class capture:
    """Context manager yielding the stage records made inside its block.

    The yielded dict is empty during the block and is filled at exit with
    the per-stage deltas (same shape as :func:`snapshot`), so callers can
    attribute timings to one region without resetting global state.

    Reads the *currently installed* registry at both ends, so it nests
    correctly inside an ``obs.metrics.capture`` registry swap.
    """

    def __enter__(self) -> Dict[str, Dict[str, float]]:
        self._before = {
            name: (rec[0], rec[1]) for name, rec in _metrics.current_timers().items()
        }
        self.stages: Dict[str, Dict[str, float]] = {}
        return self.stages

    def __exit__(self, *exc) -> bool:
        for name, rec in _metrics.current_timers().items():
            calls0, ns0 = self._before.get(name, (0, 0))
            dcalls = rec[0] - calls0
            dns = rec[1] - ns0
            if dcalls or dns:
                self.stages[name] = {"calls": dcalls, "seconds": dns / 1e9}
        return False


class enabled_scope:
    """Context manager enabling timing inside its block, restoring after."""

    def __enter__(self):
        global _enabled
        self._prev = _enabled
        _enabled = True
        return self

    def __exit__(self, *exc) -> bool:
        global _enabled
        _enabled = self._prev
        return False
