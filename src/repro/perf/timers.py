"""Lightweight hierarchical stage timers (``perf_counter_ns`` based).

Design constraints:

* **Zero overhead when disabled.**  ``stage(name)`` returns a shared
  no-op context manager and ``timed(name)`` wrappers reduce to a single
  boolean check, so instrumentation can stay wired into hot paths
  permanently.
* **Nesting-safe.**  Stages aggregate by name; a stage timed inside
  another contributes to both (the parent's total includes the child's),
  which is the natural reading of a per-stage wall-time split.
* **Diff-able.**  :class:`capture` snapshots the registry on entry and
  yields only the *delta* recorded inside its block, which is how
  ``simulate()`` attaches a per-call ``SimResult.perf_breakdown``.

The registry is process-global and not thread-safe; the simulator and
benchmark suite are single-threaded by construction.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, Dict, List

__all__ = [
    "capture",
    "disable",
    "enable",
    "enabled",
    "enabled_scope",
    "reset",
    "snapshot",
    "stage",
    "timed",
]

_enabled = False
#: name -> [calls, total_ns]
_records: Dict[str, List[int]] = {}


def enabled() -> bool:
    """Whether stage timing is currently collecting."""
    return _enabled


def enable() -> None:
    """Turn stage timing on (records accumulate until :func:`reset`)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn stage timing off; existing records are kept."""
    global _enabled
    _enabled = False


def reset() -> None:
    """Drop every accumulated stage record."""
    _records.clear()


class _StageTimer:
    """Records one timed region into the global registry on exit."""

    __slots__ = ("name", "start")

    def __init__(self, name: str):
        self.name = name

    def __enter__(self) -> "_StageTimer":
        self.start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> bool:
        elapsed = time.perf_counter_ns() - self.start
        rec = _records.get(self.name)
        if rec is None:
            _records[self.name] = [1, elapsed]
        else:
            rec[0] += 1
            rec[1] += elapsed
        return False


class _NullTimer:
    """Shared do-nothing context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL = _NullTimer()


def stage(name: str):
    """Context manager timing one region under ``name`` (no-op when off)."""
    return _StageTimer(name) if _enabled else _NULL


def timed(name: str) -> Callable:
    """Decorator timing every call of the wrapped function under ``name``."""

    def deco(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _enabled:
                return fn(*args, **kwargs)
            with _StageTimer(name):
                return fn(*args, **kwargs)

        return wrapper

    return deco


def snapshot() -> Dict[str, Dict[str, float]]:
    """Current totals: ``{stage: {"calls": n, "seconds": s}}``."""
    return {
        name: {"calls": rec[0], "seconds": rec[1] / 1e9}
        for name, rec in _records.items()
    }


class capture:
    """Context manager yielding the stage records made inside its block.

    The yielded dict is empty during the block and is filled at exit with
    the per-stage deltas (same shape as :func:`snapshot`), so callers can
    attribute timings to one region without resetting global state.
    """

    def __enter__(self) -> Dict[str, Dict[str, float]]:
        self._before = {name: (rec[0], rec[1]) for name, rec in _records.items()}
        self.stages: Dict[str, Dict[str, float]] = {}
        return self.stages

    def __exit__(self, *exc) -> bool:
        for name, rec in _records.items():
            calls0, ns0 = self._before.get(name, (0, 0))
            dcalls = rec[0] - calls0
            dns = rec[1] - ns0
            if dcalls or dns:
                self.stages[name] = {"calls": dcalls, "seconds": dns / 1e9}
        return False


class enabled_scope:
    """Context manager enabling timing inside its block, restoring after."""

    def __enter__(self):
        global _enabled
        self._prev = _enabled
        _enabled = True
        return self

    def __exit__(self, *exc) -> bool:
        global _enabled
        _enabled = self._prev
        return False
