"""Performance subsystem: stage timers, bench harness, dual-impl policy.

Two concerns live here:

* :mod:`repro.perf.timers` -- lightweight per-stage timers
  (``perf_counter_ns`` based, zero overhead when disabled) wired into the
  simulator pipeline, the schedulers, the format codecs and the training
  loop.  ``simulate()`` surfaces a per-stage split as
  ``SimResult.perf_breakdown`` when timing is enabled.
* :mod:`repro.perf.bench` -- the deterministic micro/macro benchmark
  suite behind ``python -m repro perf``; it emits machine-readable
  ``BENCH_<name>.json`` files that the CI ``bench`` job gates against a
  committed baseline.

The subsystem also owns the *dual implementation policy*: every
vectorized hot path keeps its original loop-based reference
implementation, selectable at runtime with ``REPRO_REFERENCE_IMPL=1``.
The equivalence suite (``tests/sim/test_vectorized_equivalence.py``)
proves the two agree bit-exactly; the escape hatch exists so a
regression can always be bisected against the reference semantics.
"""

from __future__ import annotations

import os

from .timers import (
    capture,
    disable,
    enable,
    enabled,
    enabled_scope,
    reset,
    snapshot,
    stage,
    timed,
)

__all__ = [
    "REFERENCE_ENV",
    "capture",
    "disable",
    "enable",
    "enabled",
    "enabled_scope",
    "reset",
    "snapshot",
    "stage",
    "timed",
    "use_reference_impl",
]

#: Environment variable forcing the loop-based reference implementations.
REFERENCE_ENV = "REPRO_REFERENCE_IMPL"


def use_reference_impl() -> bool:
    """True when ``REPRO_REFERENCE_IMPL=1`` forces the reference paths.

    Checked per call (not cached) so tests can flip the switch with
    ``monkeypatch.setenv`` and compare both implementations in-process.
    """
    return os.environ.get(REFERENCE_ENV, "") == "1"
