"""Deterministic micro/macro benchmark suite with a regression gate.

The suite times the simulator's hot paths (micro benches: segment
derivation, DVPE cost batching, both schedulers, every storage format's
encode, the codec batch), the transposable-mask solver backends
(``tsolver_{greedy,tsenor}_m{8,32}`` on seeded block batches), and two
macro paths (one full ``simulate`` call and a miniature fig13-style
sweep).  Every bench is seeded and shape-pinned, so two runs of the same
profile do identical work.

Wall times are normalized by a calibration workload (a fixed numpy +
Python mix timed on the same machine right before the suite), which is
what makes the committed ``BENCH_baseline.json`` comparable across
developer laptops and CI runners: the regression gate compares
*normalized* times, one-sided, so getting faster never fails the gate.

Output schema (``BENCH_<name>.json``)::

    {
      "schema": 1, "name": ..., "profile": "smoke|quick|full",
      "seed": ..., "python": ..., "platform": ...,
      "reference_impl": false, "calibration_s": ...,
      "benches": {name: {"wall_s", "normalized", "cells",
                         "cells_per_s", "stages"}},
      "total_wall_s": ..., "peak_rss_kb": ...
    }

``stages`` is the per-stage timer split captured while the bench ran
(:mod:`repro.perf.timers`).  ``peak_rss_kb`` comes from
``resource.getrusage`` -- no third-party dependency.
"""

from __future__ import annotations

import json
import math
import platform
import resource
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from . import use_reference_impl
from .timers import capture, enabled_scope

__all__ = [
    "PROFILES",
    "append_trajectory",
    "calibrate",
    "compare",
    "load_bench_json",
    "merge_best",
    "run_suite",
    "run_suite_best",
    "write_bench_json",
]

SCHEMA_VERSION = 1

#: Work sizes per profile.  ``smoke`` exists for unit tests (sub-second),
#: ``quick`` is the CI gate, ``full`` is for committed baselines and
#: local investigation.
PROFILES: Dict[str, Dict[str, int]] = {
    "smoke": {
        "rows": 64, "cols": 64, "b_cols": 16, "n_blocks": 128, "reps": 1,
        "sweep_archs": 2, "tsolver_blocks": 16, "scenario_scale": 64,
    },
    "quick": {
        "rows": 192, "cols": 160, "b_cols": 64, "n_blocks": 2048, "reps": 5,
        "sweep_archs": 3, "tsolver_blocks": 256, "scenario_scale": 16,
    },
    "full": {
        "rows": 384, "cols": 320, "b_cols": 128, "n_blocks": 8192, "reps": 5,
        "sweep_archs": 6, "tsolver_blocks": 256, "scenario_scale": 8,
    },
}

_M = 8

#: Autorange floor: each timed rep loops its callable until at least this
#: much wall time accumulates, so per-call estimates are not timer noise.
_MIN_REP_S = 0.01
#: Safety cap on the autorange loop count (bounds suite runtime even for
#: microsecond-scale callables).
_MAX_INNER = 256


def peak_rss_kb() -> int:
    """Peak resident set size of this process, in kilobytes."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def calibrate(reps: int = 3) -> float:
    """Seconds for a fixed numpy + Python reference workload (median).

    The mix (argsort, cumsum, boolean reductions, a short Python loop)
    mirrors what the simulator actually does, so the ratio
    ``bench_wall / calibration`` is roughly machine-independent.
    """
    times: List[float] = []
    for _ in range(max(1, reps)):
        rng = np.random.default_rng(0xC0FFEE)
        a = rng.normal(size=(400, 400))
        t0 = time.perf_counter()
        acc = 0.0
        for _ in range(6):
            order = np.argsort(a, axis=1, kind="stable")
            b = np.take_along_axis(a, order, axis=1)
            acc += float(np.cumsum(b, axis=0)[-1].sum())
            acc += sum((a > 0).sum(axis=1).tolist()[:100])
        times.append(time.perf_counter() - t0)
    times.sort()
    return max(1e-9, times[len(times) // 2])


# ---------------------------------------------------------------------------
# bench bodies -- each returns (cells, setup-free callable)
# ---------------------------------------------------------------------------


def _bench_workload(sizes: Dict[str, int], seed: int):
    from ..core.patterns import PatternFamily
    from ..workloads.generator import build_workload
    from ..workloads.layers import LayerSpec

    layer = LayerSpec("bench", sizes["rows"], sizes["cols"], sizes["b_cols"])
    return build_workload(layer, PatternFamily.TBS, sparsity=0.75, m=_M, seed=seed)


def _micro_benches(sizes: Dict[str, int], seed: int) -> List[Tuple[str, int, Callable[[], None]]]:
    from ..formats.base import EncodeSpec
    from ..formats.bcsrcoo import BCSRCOOFormat
    from ..formats.bitmap import BitmapFormat
    from ..formats.conversion import batch_conversion_cycles
    from ..formats.csr import CSRFormat
    from ..formats.ddc import DDCFormat
    from ..formats.memory_model import traffic_report
    from ..formats.sdc import SDCFormat
    from ..hw.config import tb_stc
    from ..hw.dvpe import DVPE
    from ..hw.scheduler import schedule_direct, schedule_sparsity_aware
    from ..sim.engine import block_segments

    rng = np.random.default_rng(seed)
    config = tb_stc()
    workload = _bench_workload(sizes, seed)
    n_blocks = sizes["n_blocks"]
    row_counts = rng.integers(0, _M + 1, size=(n_blocks, _M)).astype(np.int64)
    costs = rng.integers(1, 3 * _M, size=n_blocks).astype(np.int64)
    pe = DVPE(lanes=config.lanes_per_pe, output_port_width=config.output_port_width)
    conv_blocks = (rng.random((max(1, n_blocks // 8), _M, _M)) < 0.4) * rng.normal(
        size=(max(1, n_blocks // 8), _M, _M)
    )
    sparse = workload.sparse_values
    matrix_cells = sparse.size

    benches: List[Tuple[str, int, Callable[[], None]]] = [
        (
            "block_segments",
            matrix_cells,
            lambda: block_segments(workload, config),
        ),
        (
            "dvpe_costs",
            n_blocks * _M,
            lambda: pe.block_costs_batch(row_counts),
        ),
        (
            "schedule_direct",
            n_blocks,
            lambda: schedule_direct(costs, config.num_pes),
        ),
        (
            "schedule_sparsity_aware",
            n_blocks,
            lambda: schedule_sparsity_aware(costs, config.num_pes, window=config.scheduler_window),
        ),
        (
            "codec_batch",
            int(conv_blocks.size),
            lambda: batch_conversion_cycles(np.asarray(conv_blocks), n_queues=_M),
        ),
    ]
    for fmt in (DDCFormat(), SDCFormat(group_rows=_M), CSRFormat(), BitmapFormat(), BCSRCOOFormat()):
        spec = EncodeSpec(
            tbs=workload.tbs if fmt.name in ("ddc", "bcsrcoo") else None,
            block_size=_M,
        )
        benches.append(
            (
                f"encode_{fmt.name}",
                matrix_cells,
                lambda fmt=fmt, spec=spec: fmt.encode(sparse, spec),
            )
        )

    # Orientation benches: transposed-trace derivation is the new hot
    # path (built lazily per encoding, once per orientation flip), so pin
    # its cost per format.  Each bench owns its encoding and clears the
    # cache first so every call measures a full derivation, not a hit.
    tbs_spec = EncodeSpec(tbs=workload.tbs, block_size=_M)
    plain_spec = EncodeSpec(block_size=_M)
    traced = {
        "csr": CSRFormat().encode(sparse, plain_spec),
        "ddc": DDCFormat().encode(sparse, tbs_spec),
        "bcsrcoo": BCSRCOOFormat().encode(sparse, tbs_spec),
    }

    def _trace_t(enc) -> None:
        enc.transposed_segments = None
        enc.trace("transposed")

    benches.append(
        ("format_trace_t_csr", matrix_cells, lambda enc=traced["csr"]: _trace_t(enc))
    )
    benches.append(
        ("format_trace_t_ddc", matrix_cells, lambda enc=traced["ddc"]: _trace_t(enc))
    )
    benches.append(
        ("bcsrcoo_trace_t", matrix_cells, lambda enc=traced["bcsrcoo"]: _trace_t(enc))
    )

    both_encs = tuple(traced.values())

    def _traffic_both() -> None:
        # Both passes analysed from already-built encodings; the
        # transposed traces are pre-warmed above so this isolates the
        # burst/merge analysis cost itself.
        for enc in both_encs:
            for orientation in ("forward", "transposed"):
                traffic_report(enc, m=_M, orientation=orientation)

    for enc in both_encs:
        enc.trace("transposed")
    benches.append(
        ("format_traffic_both", matrix_cells * len(both_encs), _traffic_both)
    )
    return benches


def _tsolver_benches(sizes: Dict[str, int], seed: int) -> List[Tuple[str, int, Callable[[], None]]]:
    """Transposable-mask solver speed benches, greedy vs tsenor.

    Same seeded block batches per backend pair, so the committed
    baseline pins the tsenor-vs-greedy speed ratio: the M=32 pair is the
    scenario the batched Sinkhorn backend exists for (>= 5x on this
    shape), the M=8 pair guards the small-block regime where the batch
    advantage is thinner.  ``exact`` is deliberately absent -- it is the
    quality oracle (see ``benchmarks/test_tsolver_tradeoff.py``), orders
    of magnitude slower, and would dominate suite wall time.
    """
    from ..core.tsolvers import solve_blocks

    rng = np.random.default_rng(seed)
    b = max(1, sizes["tsolver_blocks"])
    batches = {
        8: np.abs(rng.normal(size=(b * 4, 8, 8))),
        32: np.abs(rng.normal(size=(b, 32, 32))),
    }
    benches: List[Tuple[str, int, Callable[[], None]]] = []
    for m, blocks in batches.items():
        n = 3 * m // 8
        for backend in ("greedy", "tsenor"):
            benches.append(
                (
                    f"tsolver_{backend}_m{m}",
                    int(blocks.size),
                    lambda blocks=blocks, n=n, backend=backend: solve_blocks(
                        blocks, n, backend=backend
                    ),
                )
            )
    return benches


def _macro_benches(sizes: Dict[str, int], seed: int) -> List[Tuple[str, int, Callable[[], None]]]:
    from ..hw.config import all_baselines
    from ..sim import engine
    from ..sim.baselines import ARCH_FAMILY, simulate_arch
    from ..workloads.generator import build_workload
    from ..workloads.layers import LayerSpec

    workload = _bench_workload(sizes, seed)
    matrix_cells = workload.values.size
    configs = list(all_baselines())[: max(1, sizes["sweep_archs"])]
    layer = LayerSpec("bench-sweep", sizes["rows"], sizes["cols"], sizes["b_cols"])

    def _sweep() -> None:
        # Fresh workloads per arch family (mask generation included, as
        # in the real fig13 sweep); the cost memo is cleared so repeated
        # suite runs measure the same work.
        engine._COST_MEMO.clear()
        from ..core.patterns import PatternFamily

        for config in configs:
            family = ARCH_FAMILY.get(config.name, PatternFamily.TBS)
            w = build_workload(layer, family, sparsity=0.75, m=_M, seed=seed)
            simulate_arch(config, w)

    def _simulate_layer() -> None:
        engine._COST_MEMO.clear()
        simulate_arch(configs[0], workload)

    return [
        ("simulate_layer", matrix_cells, _simulate_layer),
        ("sweep_fig13_mini", matrix_cells * len(configs), _sweep),
    ]


def _scenario_benches(sizes: Dict[str, int], seed: int) -> List[Tuple[str, int, Callable[[], None]]]:
    """Scenario-family generation benches, one per workload family.

    Each times the full lowering path ``build_scenario`` runs under the
    TBS regime -- synthetic weights, the family's structural transform
    (stencil tap structure / MoE block-diagonal combine / inference
    projections) and the pattern projection -- at the profile's pinned
    ``scenario_scale``, so a regression in any family's generator shows
    up before the ``run_scenarios`` sweep does.
    """
    from ..workloads.scenarios import SCENARIO_FAMILIES, build_scenario

    scale = sizes["scenario_scale"]
    benches: List[Tuple[str, int, Callable[[], None]]] = []
    for family in SCENARIO_FAMILIES:
        bundle = build_scenario(family, "TBS", seed=seed, scale=scale)
        cells = sum(wl.values.size for wl in bundle.layers) + bundle.format_workload.values.size
        benches.append(
            (
                f"scenario_{family}",
                int(cells),
                lambda family=family, scale=scale: build_scenario(
                    family, "TBS", seed=seed, scale=scale
                ),
            )
        )
    return benches


def _all_benches(sizes: Dict[str, int], seed: int) -> List[Tuple[str, int, Callable[[], None]]]:
    """The whole suite, in its canonical order."""
    return (
        _micro_benches(sizes, seed)
        + _tsolver_benches(sizes, seed)
        + _scenario_benches(sizes, seed)
        + _macro_benches(sizes, seed)
    )


def _time_bench(
    fn: Callable[[], None], cells: int, reps: int, calibration_s: float
) -> Tuple[Dict, float]:
    """Warm up, autorange, and time one bench callable.

    Returns the per-bench record plus the total wall time spent (the
    suite's ``total_wall_s`` contribution).  Shared by the serial suite
    loop and the per-bench worker cell, so both measure identically.
    """
    # Warm-up excludes one-time allocation/import effects and
    # sizes the autorange: sub-millisecond callables are pure
    # timer noise at +/-25%, so each rep loops the callable until
    # it accumulates at least _MIN_REP_S of measured work.
    t0 = time.perf_counter()
    fn()
    warm = time.perf_counter() - t0
    inner = max(1, min(_MAX_INNER, int(math.ceil(_MIN_REP_S / max(warm, 1e-9)))))
    rep_times: List[float] = []
    cap = capture()
    with cap as stages:
        for _ in range(reps):
            t0 = time.perf_counter()
            for _ in range(inner):
                fn()
            rep_times.append((time.perf_counter() - t0) / inner)
    # min-of-reps: scheduling noise only ever adds time, so the
    # fastest rep is the best estimate of the true cost.
    wall = min(rep_times)
    record = {
        "wall_s": wall,
        "normalized": wall / calibration_s,
        "cells": int(cells),
        "cells_per_s": cells / wall if wall > 0 else float("inf"),
        "stages": stages,
    }
    return record, sum(t * inner for t in rep_times)


def _bench_cell(profile: str, seed: int, bench_name: str) -> Dict:
    """Run one named bench in this process (the sweep-engine cell body).

    Calibration runs here too: normalization must use a workload timed in
    the *same* process as the bench, or a loaded sibling worker would
    skew the ratio.  The calibration and spent-wall figures ride along in
    the record for the parent to fold into the suite payload.
    """
    sizes = PROFILES[profile]
    calibration_s = calibrate()
    suite = _all_benches(sizes, seed)
    for name_, cells, fn in suite:
        if name_ == bench_name:
            break
    else:
        raise ValueError(f"unknown bench {bench_name!r}")
    with enabled_scope():
        record, spent = _time_bench(fn, cells, sizes["reps"], calibration_s)
    record["calibration_s"] = calibration_s
    record["spent_wall_s"] = spent
    record["peak_rss_kb"] = peak_rss_kb()
    return record


def run_suite(
    profile: str = "quick",
    seed: int = 0,
    name: str = "baseline",
    workers: Optional[int] = None,
    options=None,
) -> Dict:
    """Run the full bench suite and return the BENCH json payload.

    ``workers > 1`` shards the benches across a process pool via the
    sweep engine: each worker calibrates itself and times its benches
    in-process, so normalized figures stay meaningful; ``workers=1``
    (the default) is the historical in-process loop, byte-identical in
    schema and measurement procedure.
    """
    from ..sweep import SweepCell, SweepSpec, configured_workers, run_sweep

    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; choose from {sorted(PROFILES)}")
    sizes = PROFILES[profile]
    reps = sizes["reps"]
    n_workers = configured_workers(workers)

    benches: Dict[str, Dict] = {}
    total = 0.0
    if n_workers > 1:
        bench_names = [b[0] for b in _all_benches(sizes, seed)]
        sweep = run_sweep(
            SweepSpec(
                f"perf-{profile}",
                tuple(
                    SweepCell(
                        key=bench_name,
                        fn=_bench_cell,
                        kwargs={"profile": profile, "seed": seed, "bench_name": bench_name},
                    )
                    for bench_name in bench_names
                ),
            ),
            workers=n_workers,
            strict=True,
            options=options,
        )
        calibrations: List[float] = []
        rss = peak_rss_kb()
        for bench_name in bench_names:
            record = dict(sweep.value(bench_name))
            calibrations.append(record.pop("calibration_s"))
            total += record.pop("spent_wall_s")
            rss = max(rss, record.pop("peak_rss_kb"))
            benches[bench_name] = record
        calibration_s = min(calibrations)
        peak_rss = rss
    else:
        calibration_s = calibrate()
        suite = _all_benches(sizes, seed)
        with enabled_scope():
            for bench_name, cells, fn in suite:
                record, spent = _time_bench(fn, cells, reps, calibration_s)
                total += spent
                benches[bench_name] = record
        peak_rss = peak_rss_kb()

    return {
        "schema": SCHEMA_VERSION,
        "name": name,
        "profile": profile,
        "seed": seed,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "reference_impl": use_reference_impl(),
        "calibration_s": calibration_s,
        "benches": benches,
        "total_wall_s": total,
        "peak_rss_kb": peak_rss,
    }


def merge_best(a: Dict, b: Dict) -> Dict:
    """Merge two suite runs, keeping the faster record per bench.

    Noise from a loaded machine only ever adds time, so the per-bench
    minimum over several rounds is the best estimate of true cost.  Each
    bench's whole record is taken from the round with the lower
    ``normalized`` figure so its fields stay mutually consistent.
    """
    merged = dict(a)
    merged["benches"] = dict(a["benches"])
    for bench_name, rec in b["benches"].items():
        cur = merged["benches"].get(bench_name)
        if cur is None or rec["normalized"] < cur["normalized"]:
            merged["benches"][bench_name] = rec
    merged["calibration_s"] = min(a["calibration_s"], b["calibration_s"])
    merged["total_wall_s"] = a["total_wall_s"] + b["total_wall_s"]
    merged["peak_rss_kb"] = max(a["peak_rss_kb"], b["peak_rss_kb"])
    return merged


def run_suite_best(
    profile: str = "quick",
    seed: int = 0,
    name: str = "baseline",
    rounds: int = 1,
    workers: Optional[int] = None,
    options=None,
) -> Dict:
    """Run the suite ``rounds`` times and keep the per-bench best.

    ``options`` (a :class:`repro.sweep.SweepOptions`) threads the
    supervised-executor knobs through the sharded (``workers > 1``)
    path; the serial path has no sweep to configure.
    """
    data = run_suite(profile, seed, name, workers=workers, options=options)
    for _ in range(max(0, rounds - 1)):
        data = merge_best(data, run_suite(profile, seed, name, workers=workers, options=options))
    return data


# ---------------------------------------------------------------------------
# persistence + regression gate
# ---------------------------------------------------------------------------


def write_bench_json(path: str, data: Dict) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_bench_json(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: bench schema {data.get('schema')!r} != supported {SCHEMA_VERSION}"
        )
    return data


def compare(
    current: Dict, baseline: Dict, tolerance: float = 0.25
) -> Tuple[List[str], List[str]]:
    """One-sided regression gate on normalized bench times.

    Returns ``(failures, report_lines)``.  A bench fails when its
    normalized time exceeds the baseline's by more than ``tolerance``
    (speed-ups never fail).  Benches present on only one side are
    reported but do not fail -- renames should not break CI silently, and
    the report line makes the drift visible.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    failures: List[str] = []
    lines: List[str] = []
    base_benches = baseline.get("benches", {})
    cur_benches = current.get("benches", {})
    for bench_name in sorted(set(base_benches) | set(cur_benches)):
        cur = cur_benches.get(bench_name)
        base = base_benches.get(bench_name)
        if cur is None:
            lines.append(f"  {bench_name:<24} only in baseline (removed?)")
            continue
        if base is None:
            lines.append(f"  {bench_name:<24} new bench ({cur['normalized']:.3f} normalized)")
            continue
        base_norm = base["normalized"]
        ratio = cur["normalized"] / base_norm if base_norm > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + tolerance:
            verdict = "REGRESSION"
            failures.append(
                f"{bench_name}: {ratio:.2f}x baseline (normalized "
                f"{cur['normalized']:.3f} vs {base_norm:.3f}, gate {1.0 + tolerance:.2f}x)"
            )
        lines.append(
            f"  {bench_name:<24} {ratio:5.2f}x vs baseline "
            f"({cur['wall_s'] * 1e3:8.2f} ms local)  {verdict}"
        )
    return failures, lines


def append_trajectory(path: str, entry: Dict) -> None:
    """Append one JSON line to the bench trajectory file."""
    with open(path, "a", encoding="utf-8") as fh:
        json.dump(entry, fh, sort_keys=True)
        fh.write("\n")
