"""NVIDIA-style 2:4 one-shot-pruned inference projections.

The third scenario family: transformer projection GEMMs at BERT-base
and OPT-6.7B shapes, one-shot magnitude-pruned the way the 2:4
inference recipe does (prune a trained checkpoint once, deploy without
retraining).  The native pattern here is the fixed 2:4/4:8 TS ratio --
sparsity saturates at 50% -- which makes this the family where the
*baseline* hardware (NVIDIA's STC) is playing its home game and TBS
must win on flexibility alone.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.patterns import DEFAULT_M, PatternFamily
from .generator import GEMMWorkload, pattern_mask, synthetic_weights
from .layers import LayerSpec, bert_layers, opt_6_7b_layers

__all__ = ["INFERENCE24_SPARSITY", "inference24_layers", "build_inference24_workloads"]

#: The 2:4 recipe's fixed pruning degree.
INFERENCE24_SPARSITY = 0.5


def inference24_layers(seq_len: int = 128) -> List[LayerSpec]:
    """The evaluated projection shapes: BERT-base QKV/FFN + OPT-6.7B QKV/FFN."""
    bert = {layer.name: layer for layer in bert_layers(seq_len)}
    opt = {layer.name: layer for layer in opt_6_7b_layers(seq_len)}
    return [bert["bert.qkv"], bert["bert.ffn_down"], opt["opt.qkv"], opt["opt.ffn_down"]]


def build_inference24_workloads(
    family: PatternFamily,
    sparsity: float = INFERENCE24_SPARSITY,
    m: int = DEFAULT_M,
    seed: int = 0,
    scale: int = 1,
    seq_len: int = 128,
    tsolver: Optional[str] = None,
) -> List[GEMMWorkload]:
    """One-shot magnitude-prune every projection with ``family``.

    Weights carry trained-layer statistics (:func:`synthetic_weights`);
    the mask is a single projection of their magnitudes onto ``family``
    at ``sparsity`` -- no retraining loop, matching the deployment-time
    2:4 recipe.  ``sparsity=0`` keeps the dense baseline.
    """
    workloads: List[GEMMWorkload] = []
    for i, layer in enumerate(inference24_layers(seq_len)):
        spec_layer = layer.scaled(scale, m=m) if scale > 1 else layer
        weights = synthetic_weights(spec_layer.rows, spec_layer.cols, seed=seed + i)
        mask, tbs = pattern_mask(weights, family, sparsity, m=m, tsolver=tsolver)
        workloads.append(
            GEMMWorkload(
                name=f"inf24.{spec_layer.name}[{family.name}@{sparsity:.0%}]",
                values=weights,
                mask=mask,
                b_cols=spec_layer.b_cols,
                m=m,
                family=family,
                tbs=tbs,
            )
        )
    return workloads
