"""MegaBlocks-style block-sparse MoE expert layers.

A Mixture-of-Experts FFN routes each token to one expert; stacking the
expert weight matrices gives one block-diagonal GEMM ``A = diag(W_1 ..
W_E)`` whose off-diagonal blocks are *structurally* zero -- exactly the
block-sparse matrices MegaBlocks/stk execute on tensor cores.  Two views
lower to the simulator:

* the **combined** block-diagonal matrix, for the format/traffic axis:
  block-capable patterns (TBS with N=0 blocks) skip the off-diagonal
  zeros outright, while rigid patterns (2:4/TS) must keep explicit
  zeros in their mask and pay the padding;
* **per-expert** GEMMs whose ``b_cols`` follow a seeded token router
  with realistic load imbalance -- the inter-block workload imbalance
  TB-STC's sparsity-aware scheduler exists to absorb.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.patterns import DEFAULT_M, PatternFamily
from .generator import GEMMWorkload, pattern_mask, synthetic_weights

__all__ = ["MoESpec", "route_tokens", "build_moe_workloads", "moe_combined_sparsity"]


@dataclass(frozen=True)
class MoESpec:
    """One MoE expert-FFN layer: E experts of ``d_ff x d_model`` each."""

    name: str = "moe.ffn"
    experts: int = 4
    d_model: int = 256
    d_ff: int = 512
    tokens: int = 512
    #: Dirichlet concentration of the router's expert loads; lower is
    #: more skewed (1.0 gives the heavy imbalance real routers show
    #: before load-balancing losses kick in).
    imbalance: float = 1.0

    def __post_init__(self) -> None:
        if self.experts < 2:
            raise ValueError("an MoE layer needs >= 2 experts")
        if min(self.d_model, self.d_ff, self.tokens) < 1:
            raise ValueError(f"invalid MoE size for {self.name}")
        if self.imbalance <= 0:
            raise ValueError("imbalance must be positive")

    @property
    def structural_sparsity(self) -> float:
        """Off-diagonal fraction of the combined matrix: 1 - 1/E."""
        return 1.0 - 1.0 / self.experts

    def scaled(self, scale: int, m: int = DEFAULT_M) -> "MoESpec":
        """Shrink the expert dims and token count, keeping ``m``-alignment."""
        if scale < 1:
            raise ValueError(f"scale must be >= 1, got {scale}")

        def _shrink(dim: int) -> int:
            return max(m, (dim // scale // m) * m)

        return MoESpec(
            self.name,
            self.experts,
            _shrink(self.d_model),
            _shrink(self.d_ff),
            max(self.experts * 2, self.tokens // scale),
            self.imbalance,
        )


def route_tokens(spec: MoESpec, seed: int = 0) -> np.ndarray:
    """Seeded top-1 router: per-expert token counts summing to ``tokens``.

    Loads are drawn from a Dirichlet(``imbalance``) and rounded with a
    deterministic largest-remainder rule, so every expert count (and
    therefore every per-expert GEMM shape) is a pure function of
    ``(spec, seed)``.
    """
    rng = np.random.default_rng([seed, spec.experts, spec.tokens])
    loads = rng.dirichlet(np.full(spec.experts, spec.imbalance))
    raw = loads * spec.tokens
    counts = np.floor(raw).astype(np.int64)
    remainder = spec.tokens - int(counts.sum())
    if remainder > 0:
        # Largest fractional parts win the leftover tokens; ties break on
        # expert index, keeping the rounding order-stable.
        order = np.lexsort((np.arange(spec.experts), -(raw - counts)))
        counts[order[:remainder]] += 1
    return counts


def moe_combined_sparsity(spec: MoESpec, expert_sparsity: float) -> float:
    """Target sparsity of the combined matrix: structure + in-expert pruning."""
    return spec.structural_sparsity + (1.0 - spec.structural_sparsity) * expert_sparsity


def build_moe_workloads(
    spec: MoESpec,
    family: PatternFamily,
    sparsity: float,
    m: int = DEFAULT_M,
    seed: int = 0,
    scale: int = 1,
    tsolver: Optional[str] = None,
) -> Tuple[List[GEMMWorkload], GEMMWorkload]:
    """(per-expert workloads, combined block-diagonal workload).

    ``sparsity`` is the *within-expert* pruning degree; the combined
    matrix's target is lifted by the block-diagonal structure (see
    :func:`moe_combined_sparsity`).  ``sparsity=0`` is the dense
    baseline: an all-ones mask over the block-diagonal values, so dense
    hardware streams the structural zeros as explicit data.

    The per-expert masks are the diagonal slices of the combined
    pattern mask -- one pruning decision, two consumption views -- and
    each expert's ``b_cols`` comes from the seeded router, so the expert
    GEMMs carry the load imbalance into the cycle simulation.
    """
    s = spec.scaled(scale, m=m) if scale > 1 else spec
    experts = [synthetic_weights(s.d_ff, s.d_model, seed=seed + e) for e in range(s.experts)]
    combined = np.zeros((s.experts * s.d_ff, s.experts * s.d_model))
    for e, w in enumerate(experts):
        combined[e * s.d_ff : (e + 1) * s.d_ff, e * s.d_model : (e + 1) * s.d_model] = w

    target = 0.0 if sparsity <= 0.0 else moe_combined_sparsity(s, sparsity)
    mask, tbs = pattern_mask(combined, family, target, m=m, tsolver=tsolver)
    counts = route_tokens(s, seed=seed)
    combined_wl = GEMMWorkload(
        name=f"{s.name}.combined[{family.name}@{target:.0%}]",
        values=combined,
        mask=mask,
        b_cols=int(counts.max()),
        m=m,
        family=family,
        tbs=tbs,
    )
    per_expert: List[GEMMWorkload] = []
    for e, w in enumerate(experts):
        block = mask[e * s.d_ff : (e + 1) * s.d_ff, e * s.d_model : (e + 1) * s.d_model]
        per_expert.append(
            GEMMWorkload(
                name=f"{s.name}.expert{e}[{family.name}]",
                values=w,
                mask=block.copy(),
                b_cols=max(1, int(counts[e])),
                m=m,
                family=family,
            )
        )
    return per_expert, combined_wl
