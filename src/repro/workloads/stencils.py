"""SparStencil-style stencil kernels lowered to sparse GEMM workloads.

A k-point stencil update is a convolution with a fixed, mostly-zero
3^dims kernel: the star-shaped 5-point (2-D) / 7-point (3-D) stencils
touch only the axis-aligned neighbours, the box-shaped 9-point /
27-point variants touch the whole 3^dims neighbourhood.  Following
SparStencil, the kernel is im2col-lowered exactly like a convolution --
``A`` is ``(fields, fields * 3^dims)``, ``B`` is the patch matrix over
the grid points -- and the stencil's *fixed* zero structure is then
expressed as a structured-sparsity transformation: the structural zeros
carry zero magnitude, so projecting the lowered weights onto any
pattern family at a sparsity at or above the structural level absorbs
the stencil shape into the pattern's own mask.  Families that cannot
express the shape (e.g. the rigid 4:8 TS pattern against a 20/27-zero
3-D star) keep explicit zeros in their mask and pay the padding --
which is exactly the win/loss axis ``run_scenarios`` measures.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.patterns import DEFAULT_M, PatternFamily
from .generator import GEMMWorkload, pattern_mask, synthetic_weights
from .layers import LayerSpec

__all__ = [
    "StencilSpec",
    "STENCILS",
    "stencil_tap_mask",
    "build_stencil_workload",
]


def stencil_tap_mask(dims: int, kind: str) -> np.ndarray:
    """Boolean keep-mask over the 3^dims kernel taps, in raster order.

    ``star`` keeps the centre plus the axis-aligned offsets (2*dims + 1
    taps: the classic 5-point/7-point shapes); ``box`` keeps all 3^dims.
    """
    if dims not in (2, 3):
        raise ValueError(f"stencil dims must be 2 or 3, got {dims}")
    if kind not in ("star", "box"):
        raise ValueError(f"stencil kind must be 'star' or 'box', got {kind!r}")
    offsets = list(itertools.product((-1, 0, 1), repeat=dims))
    if kind == "box":
        return np.ones(len(offsets), dtype=bool)
    return np.array([sum(o != 0 for o in off) <= 1 for off in offsets], dtype=bool)


@dataclass(frozen=True)
class StencilSpec:
    """One stencil kernel over a ``fields``-deep grid of ``grid^dims`` points."""

    name: str
    dims: int  # 2 or 3
    kind: str  # "star" | "box"
    fields: int = 64  # coupled field components (the im2col channel depth)
    grid: int = 32  # points per grid axis

    def __post_init__(self) -> None:
        stencil_tap_mask(self.dims, self.kind)  # validates dims/kind
        if self.fields < 1 or self.grid < 1:
            raise ValueError(f"invalid stencil size for {self.name}")

    @property
    def footprint(self) -> int:
        """Taps in the full (box) neighbourhood: 3^dims."""
        return 3**self.dims

    @property
    def taps(self) -> int:
        """Live taps of this stencil shape (5/7 star, 9/27 box)."""
        return int(stencil_tap_mask(self.dims, self.kind).sum())

    @property
    def structural_sparsity(self) -> float:
        """Fraction of the lowered kernel that is structurally zero."""
        return 1.0 - self.taps / self.footprint

    def layer(self) -> LayerSpec:
        """The im2col-lowered GEMM shape (``A`` is fields x fields*3^dims)."""
        return LayerSpec(self.name, self.fields, self.fields * self.footprint, self.grid**self.dims)

    def scaled(self, scale: int, m: int = DEFAULT_M) -> "StencilSpec":
        """Shrink the field depth and grid, keeping ``m``-alignment.

        Scaling happens on ``fields`` (not on the lowered cols) so the
        tap structure stays aligned to whole 3^dims groups: the lowered
        reduction dim is always ``fields * 3^dims``, and with ``fields``
        a multiple of ``m`` both GEMM dims stay ``m``-divisible (the
        footprint is odd, so ``m`` must divide ``fields``).
        """
        if scale < 1:
            raise ValueError(f"scale must be >= 1, got {scale}")
        fields = max(m, (self.fields // scale // m) * m)
        grid = max(2, self.grid // scale)
        return StencilSpec(self.name, self.dims, self.kind, fields, grid)

    def structure(self) -> np.ndarray:
        """The fixed zero structure of the lowered ``A`` matrix.

        Every output field couples to every input field through the same
        stencil shape, so each row repeats the tap mask once per field.
        """
        row = np.repeat(stencil_tap_mask(self.dims, self.kind)[None, :], self.fields, axis=0)
        return np.broadcast_to(row.reshape(-1), (self.fields, self.fields * self.footprint)).copy()


#: The evaluated stencil shapes (SparStencil's 2-D/3-D star/box set).
STENCILS: Dict[str, StencilSpec] = {
    "star5": StencilSpec("stencil.star5_2d", dims=2, kind="star"),
    "box9": StencilSpec("stencil.box9_2d", dims=2, kind="box"),
    "star7": StencilSpec("stencil.star7_3d", dims=3, kind="star", grid=16),
    "box27": StencilSpec("stencil.box27_3d", dims=3, kind="box", grid=16),
}


def build_stencil_workload(
    spec: StencilSpec,
    family: PatternFamily,
    sparsity: float,
    m: int = DEFAULT_M,
    seed: int = 0,
    scale: int = 1,
    tsolver: Optional[str] = None,
) -> GEMMWorkload:
    """Lower ``spec`` and project it onto ``family`` at >= its structure.

    The effective target is ``max(sparsity, structural)`` (except for the
    dense ``sparsity=0`` baseline, which keeps an all-ones mask and pays
    for the structural zeros as explicit values -- the cost of running a
    stencil on dense hardware): a pattern cannot prune *less* than the
    stencil shape already does.
    """
    s = spec.scaled(scale, m=m) if scale > 1 else spec
    layer = s.layer()
    structure = s.structure()
    weights = synthetic_weights(layer.rows, layer.cols, seed=seed) * structure
    target = sparsity if sparsity <= 0.0 else max(sparsity, s.structural_sparsity)
    mask, tbs = pattern_mask(weights, family, target, m=m, tsolver=tsolver)
    return GEMMWorkload(
        name=f"{layer.name}[{family.name}@{target:.0%}]",
        values=weights,
        mask=mask,
        b_cols=layer.b_cols,
        m=m,
        family=family,
        tbs=tbs,
    )


def stencil_structure_stats(spec: StencilSpec) -> Tuple[int, int, float]:
    """(live taps, footprint, structural sparsity) -- for tables/docs."""
    return spec.taps, spec.footprint, spec.structural_sparsity
