"""Bridge from trained numpy models to simulator workloads.

The accuracy experiments (``repro.nn``) and the hardware experiments
(``repro.sim``) meet here: take a *trained, masked* model, lower each
prunable layer to its GEMM, attach the layer's actual mask (re-deriving
TBS block metadata for TBS-trained models), and hand the result to the
cycle simulator.  This is the full paper pipeline -- train with a
pattern, then measure that very model's latency/energy on the
accelerator -- rather than simulating synthetic masks of the same
statistics.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.patterns import PatternFamily
from ..core.sparsify import TBSResult, tbs_sparsify
from ..nn.layers import Conv2d, Linear, Module
from ..nn.models import prunable_layers
from .generator import GEMMWorkload

__all__ = ["workload_from_layer", "workloads_from_model"]


def _tbs_metadata_from_mask(values: np.ndarray, mask: np.ndarray, m: int) -> TBSResult:
    """Recover per-block (N, direction) metadata from a TBS-trained mask.

    The mask was produced by Algorithm 1 on the (then-current) weights;
    re-running the direction/N recovery on the mask itself (using it as
    both scores and unstructured reference) reproduces the block
    metadata exactly, because a valid TBS mask is its own fixed point.
    """
    return tbs_sparsify(mask.astype(np.float64), m=m, sparsity=0.0, us_mask=mask)


def workload_from_layer(
    layer,
    b_cols: int,
    family: PatternFamily,
    m: int = 8,
    name: Optional[str] = None,
) -> GEMMWorkload:
    """Lower one trained maskable layer to a simulator workload.

    ``b_cols`` is the GEMM's independent dimension of the activation
    operand: the token/batch count for Linear layers, the output pixel
    count for convolutions.
    """
    if not isinstance(layer, (Linear, Conv2d)):
        raise TypeError(f"expected a maskable layer, got {type(layer).__name__}")
    if b_cols < 1:
        raise ValueError("b_cols must be positive")
    values = layer.weight_matrix().copy()
    mask = layer.mask if layer.mask is not None else np.ones(values.shape, dtype=bool)
    tbs = None
    if family is PatternFamily.TBS and layer.mask is not None:
        tbs = _tbs_metadata_from_mask(values, mask, m)
    return GEMMWorkload(
        name=name or f"{type(layer).__name__}({values.shape[0]}x{values.shape[1]})",
        values=values,
        mask=mask.copy(),
        b_cols=b_cols,
        m=m,
        family=family,
        tbs=tbs,
    )


def workloads_from_model(
    model: Module,
    family: PatternFamily,
    batch: int = 32,
    spatial: Optional[int] = None,
    m: int = 8,
) -> List[GEMMWorkload]:
    """Lower every prunable layer of a trained model.

    ``batch`` sets the Linear-layer GEMM width; ``spatial`` (output
    pixels per image) scales convolution widths -- when omitted it is
    estimated from each conv's most recent forward cache, falling back
    to ``batch``.
    """
    workloads: List[GEMMWorkload] = []
    for i, layer in enumerate(prunable_layers(model)):
        if isinstance(layer, Conv2d):
            if spatial is not None:
                b_cols = batch * spatial
            elif getattr(layer, "_cache", None) is not None:
                cols = layer._cache[1]
                b_cols = max(1, cols.shape[1] * cols.shape[2]) * batch
            else:
                b_cols = batch
        else:
            b_cols = batch
        workloads.append(
            workload_from_layer(layer, b_cols, family, m=m, name=f"layer{i}")
        )
    return workloads
