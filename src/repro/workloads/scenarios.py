"""Scenario registry: the workload families behind ``run_scenarios``.

One scenario = one workload family (stencil / moe / inference24) pruned
with one pattern regime:

* ``"TBS"``   -- transposable block-wise N:M at the family's target
  sparsity, executed on TB-STC;
* ``"2:4"``   -- NVIDIA's fixed TS ratio (sparsity saturates at 4:8),
  executed on STC;
* ``"dense"`` -- an all-ones mask, executed on the dense TC baseline.

Each bundle carries the simulator view (``layers`` + ``repeats`` for
aggregated cycles/EDP) and one representative matrix for the storage
format / traffic axis, so the analysis driver can sweep pattern x
format x orientation without knowing how each family lowers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..core.patterns import DEFAULT_M, PatternFamily
from .generator import GEMMWorkload
from .inference24 import INFERENCE24_SPARSITY, build_inference24_workloads
from .moe import MoESpec, build_moe_workloads
from .stencils import STENCILS, build_stencil_workload

__all__ = [
    "ScenarioBundle",
    "SCENARIO_FAMILIES",
    "SCENARIO_PATTERNS",
    "SCENARIO_ARCH",
    "build_scenario",
]

#: The registered workload families, in canonical sweep order.
SCENARIO_FAMILIES: Tuple[str, ...] = ("stencil", "moe", "inference24")

#: The pattern regimes every family is swept through.
SCENARIO_PATTERNS: Tuple[str, ...] = ("TBS", "2:4", "dense")

#: Which architecture executes each pattern regime.
SCENARIO_ARCH: Dict[str, str] = {"TBS": "TB-STC", "2:4": "STC", "dense": "TC"}

_PATTERN_FAMILY: Dict[str, PatternFamily] = {
    "TBS": PatternFamily.TBS,
    "2:4": PatternFamily.TS,
    "dense": PatternFamily.US,
}

#: Per-family target sparsity under the TBS/2:4 regimes (the dense
#: regime always runs at 0): stencils prune past their structural zeros,
#: MoE prunes 50% within each expert on top of the block-diagonal
#: structure, and the 2:4-inference family uses the recipe's fixed 50%.
_FAMILY_SPARSITY: Dict[str, float] = {
    "stencil": 0.75,
    "moe": 0.5,
    "inference24": INFERENCE24_SPARSITY,
}

#: Layer repeat counts for the inference24 projections (BERT-base has 12
#: encoder layers, OPT-6.7B has 32 decoder layers).
_INFERENCE24_REPEATS = (12, 12, 32, 32)


@dataclass
class ScenarioBundle:
    """One (family, pattern) scenario, ready for simulation + encoding."""

    family: str
    pattern: str
    target_sparsity: float
    layers: Tuple[GEMMWorkload, ...]
    repeats: Tuple[int, ...]
    #: Representative matrix for the storage-format / traffic axis.
    format_workload: GEMMWorkload


def build_scenario(
    family: str,
    pattern: str,
    m: int = DEFAULT_M,
    seed: int = 0,
    scale: int = 8,
) -> ScenarioBundle:
    """Build one scenario bundle; pure function of its arguments."""
    if family not in SCENARIO_FAMILIES:
        raise ValueError(
            f"unknown workload family {family!r}; known: {', '.join(SCENARIO_FAMILIES)}"
        )
    if pattern not in SCENARIO_PATTERNS:
        raise ValueError(
            f"unknown scenario pattern {pattern!r}; known: {', '.join(SCENARIO_PATTERNS)}"
        )
    pat = _PATTERN_FAMILY[pattern]
    sparsity = 0.0 if pattern == "dense" else _FAMILY_SPARSITY[family]

    if family == "stencil":
        layers = tuple(
            build_stencil_workload(spec, pat, sparsity, m=m, seed=seed, scale=scale)
            for spec in STENCILS.values()
        )
        repeats = (1,) * len(layers)
        # The 3-D star is the shape with the most structure to exploit
        # (20 of 27 taps are structural zeros) -- the format stressor.
        fmt = build_stencil_workload(STENCILS["star7"], pat, sparsity, m=m, seed=seed, scale=scale)
    elif family == "moe":
        per_expert, combined = build_moe_workloads(
            MoESpec(), pat, sparsity, m=m, seed=seed, scale=scale
        )
        layers, repeats, fmt = tuple(per_expert), (1,) * len(per_expert), combined
    else:  # inference24
        layers = tuple(
            build_inference24_workloads(pat, sparsity, m=m, seed=seed, scale=scale)
        )
        repeats = _INFERENCE24_REPEATS
        fmt = layers[2]  # opt.qkv: the widest projection
    return ScenarioBundle(
        family=family,
        pattern=pattern,
        target_sparsity=sparsity,
        layers=layers,
        repeats=repeats,
        format_workload=fmt,
    )
