"""GEMM shapes of the evaluated layers (Sec. VII-A3).

Every workload in the paper reduces to SpMM ``D = A x B`` where ``A`` is
the sparse weight matrix:

* convolutions are im2col-lowered: ``A`` is ``(C_out, C_in*kh*kw)`` and
  ``B`` is ``(C_in*kh*kw, H_out*W_out)``;
* transformer projections are plain ``(d_out, d_in) x (d_in, tokens)``.

The shapes below follow the published architectures (ResNet-18/50,
BERT-base, OPT-6.7B).  Because the simulator models each block
individually in Python, layer shapes can be scaled down by an integer
factor (``scale``) while preserving the aspect ratios and block
statistics -- the standard practice for cycle-level Python simulators;
speedups and EDP ratios are shape-ratio driven and survive the scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["LayerSpec", "resnet50_layers", "resnet18_layers", "bert_layers", "opt_6_7b_layers", "MODEL_LAYERS"]


@dataclass(frozen=True)
class LayerSpec:
    """One GEMM-lowered layer: ``A (rows x cols)`` times ``B (cols x b_cols)``."""

    name: str
    rows: int  # independent dim of A (e.g. C_out)
    cols: int  # reduction dim of A (e.g. C_in * kh * kw)
    b_cols: int  # columns of B (e.g. output pixels or tokens)

    def __post_init__(self) -> None:
        if min(self.rows, self.cols, self.b_cols) < 1:
            raise ValueError(f"invalid layer shape for {self.name}")

    @property
    def macs(self) -> int:
        """Dense multiply-accumulate count."""
        return self.rows * self.cols * self.b_cols

    def scaled(self, scale: int, m: int = 8) -> "LayerSpec":
        """Divide every dimension by ``scale``, keeping M-alignment."""
        if scale < 1:
            raise ValueError(f"scale must be >= 1, got {scale}")

        def _shrink(dim: int) -> int:
            return max(m, (dim // scale // m) * m)

        return LayerSpec(self.name, _shrink(self.rows), _shrink(self.cols), max(8, self.b_cols // scale))


def _conv(name: str, c_out: int, c_in: int, k: int, out_hw: int) -> LayerSpec:
    return LayerSpec(name, c_out, c_in * k * k, out_hw * out_hw)


def resnet50_layers() -> List[LayerSpec]:
    """Representative ResNet-50 stages (stem and final FC excluded --
    they are never pruned, Sec. VII-A3)."""
    return [
        _conv("res50.conv2_1x1a", 64, 256, 1, 56),
        _conv("res50.conv2_3x3", 64, 64, 3, 56),
        _conv("res50.conv2_1x1b", 256, 64, 1, 56),
        _conv("res50.conv3_1x1a", 128, 512, 1, 28),
        _conv("res50.conv3_3x3", 128, 128, 3, 28),
        _conv("res50.conv3_1x1b", 512, 128, 1, 28),
        _conv("res50.conv4_1x1a", 256, 1024, 1, 14),
        _conv("res50.conv4_3x3", 256, 256, 3, 14),
        _conv("res50.conv4_1x1b", 1024, 256, 1, 14),
        _conv("res50.conv5_1x1a", 512, 2048, 1, 7),
        _conv("res50.conv5_3x3", 512, 512, 3, 7),
        _conv("res50.conv5_1x1b", 2048, 512, 1, 7),
    ]


def resnet18_layers() -> List[LayerSpec]:
    return [
        _conv("res18.conv2", 64, 64, 3, 56),
        _conv("res18.conv3", 128, 128, 3, 28),
        _conv("res18.conv3_down", 128, 64, 3, 28),
        _conv("res18.conv4", 256, 256, 3, 14),
        _conv("res18.conv4_down", 256, 128, 3, 14),
        _conv("res18.conv5", 512, 512, 3, 7),
        _conv("res18.conv5_down", 512, 256, 3, 7),
    ]


def bert_layers(seq_len: int = 128) -> List[LayerSpec]:
    """BERT-base encoder layer GEMMs (hidden 768, FFN 3072)."""
    h = 768
    return [
        LayerSpec("bert.qkv", 3 * h, h, seq_len),
        LayerSpec("bert.attn_out", h, h, seq_len),
        LayerSpec("bert.ffn_up", 4 * h, h, seq_len),
        LayerSpec("bert.ffn_down", h, 4 * h, seq_len),
    ]


def opt_6_7b_layers(seq_len: int = 128) -> List[LayerSpec]:
    """OPT-6.7B decoder layer GEMMs (hidden 4096, FFN 16384)."""
    h = 4096
    return [
        LayerSpec("opt.qkv", 3 * h, h, seq_len),
        LayerSpec("opt.attn_out", h, h, seq_len),
        LayerSpec("opt.ffn_up", 4 * h, h, seq_len),
        LayerSpec("opt.ffn_down", h, 4 * h, seq_len),
    ]


#: Model name -> (layer list, per-layer repeat counts for end-to-end runs).
MODEL_LAYERS: Dict[str, Tuple] = {
    "resnet50": (resnet50_layers, (1, 3, 3, 1, 4, 4, 1, 6, 6, 1, 3, 3)),
    "resnet18": (resnet18_layers, (4, 3, 1, 3, 1, 3, 1)),
    "bert": (bert_layers, (12, 12, 12, 12)),
    "opt-6.7b": (opt_6_7b_layers, (32, 32, 32, 32)),
}
