"""End-to-end model workloads for the Fig. 13 evaluation.

The end-to-end comparison is run *iso-accuracy*: every architecture gets
the sparsity degree at which its own pattern family matches the target
accuracy (Sec. VII-C2), so the flexible patterns run sparser models.
The per-family degrees below are taken from our accuracy experiments
(Tables I/II reproduction): at ResNet-50-level accuracy US and TBS
sustain 75%, the row-wise patterns ~62.5%, and TS is pinned at its 4:8
(50%); transformer models follow the Table II 50%-US operating point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.patterns import PatternFamily
from .generator import GEMMWorkload, build_workload
from .layers import MODEL_LAYERS

__all__ = ["ModelWorkload", "ISO_ACCURACY_SPARSITY", "build_model_workload"]

#: Iso-accuracy sparsity degrees per (model, pattern family).
ISO_ACCURACY_SPARSITY: Dict[str, Dict[PatternFamily, float]] = {
    "resnet50": {
        PatternFamily.US: 0.75,
        PatternFamily.TBS: 0.75,
        PatternFamily.RS_H: 0.625,
        PatternFamily.RS_V: 0.625,
        PatternFamily.TS: 0.5,
    },
    "bert": {
        PatternFamily.US: 0.625,
        PatternFamily.TBS: 0.625,
        PatternFamily.RS_H: 0.5,
        PatternFamily.RS_V: 0.5,
        PatternFamily.TS: 0.5,
    },
    "opt-6.7b": {
        PatternFamily.US: 0.5,
        PatternFamily.TBS: 0.5,
        PatternFamily.RS_H: 0.375,
        PatternFamily.RS_V: 0.375,
        PatternFamily.TS: 0.375,
    },
}


@dataclass
class ModelWorkload:
    """All (scaled) layers of one model pruned with one pattern family."""

    model: str
    family: PatternFamily
    sparsity: float
    layers: List[GEMMWorkload]
    repeats: List[int]

    def __post_init__(self) -> None:
        if len(self.layers) != len(self.repeats):
            raise ValueError("layers and repeats must align")

    @property
    def total_macs(self) -> int:
        return sum(r * layer.macs for r, layer in zip(self.repeats, self.layers))


def build_model_workload(
    model: str,
    family: PatternFamily,
    sparsity: float = None,
    m: int = 8,
    seed: int = 0,
    scale: int = 4,
) -> ModelWorkload:
    """Build every layer of ``model`` pruned with ``family``.

    ``sparsity=None`` selects the iso-accuracy degree for the family
    (the Fig. 13 protocol); pass an explicit degree for iso-sparsity
    comparisons (Fig. 12 style).
    """
    if model not in MODEL_LAYERS:
        raise ValueError(f"unknown model {model!r}; have {sorted(MODEL_LAYERS)}")
    if sparsity is None:
        try:
            sparsity = ISO_ACCURACY_SPARSITY[model][family]
        except KeyError:
            raise ValueError(f"no iso-accuracy degree recorded for {model}/{family.name}") from None

    layer_fn, repeats = MODEL_LAYERS[model]
    layers = [
        build_workload(spec, family, sparsity, m=m, seed=seed + i, scale=scale)
        for i, spec in enumerate(layer_fn())
    ]
    return ModelWorkload(model, family, sparsity, layers, list(repeats))
