"""Synthetic sparse-weight generation and per-pattern mask projection.

The paper's hardware evaluation prunes real trained weights; offline we
generate weights with the *statistics that matter for the hardware*:

* heavy-tailed magnitudes (trained weights are approximately Laplacian);
* per-row and per-column scale variation (channel importance spread),
  which is what creates the block-level N diversity TBS exploits
  (Fig. 17's row/col/other mix) and the inter-block workload imbalance
  the scheduler fixes;
* optional channel "dead zones" (whole near-zero rows), common in
  over-parameterised CNN layers.

``build_workload`` projects the weights onto any pattern family at a
target sparsity and packages everything the simulator needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.masks import make_mask
from ..core.patterns import DEFAULT_M, PatternFamily, PatternSpec
from ..core.sparsify import TBSResult, tbs_sparsify
from ..core.transposable import transposable_sparsify
from .layers import LayerSpec

__all__ = ["GEMMWorkload", "synthetic_weights", "build_workload", "pattern_mask"]


@dataclass
class GEMMWorkload:
    """One sparse GEMM ready for simulation: ``D = (values*mask) @ B``."""

    name: str
    values: np.ndarray  # dense weight values (rows x cols)
    mask: np.ndarray  # boolean keep-mask
    b_cols: int
    m: int = DEFAULT_M
    family: PatternFamily = PatternFamily.TBS
    tbs: Optional[TBSResult] = None  # populated when family is TBS

    def __post_init__(self) -> None:
        if self.values.shape != self.mask.shape:
            raise ValueError("values and mask shapes differ")
        if self.b_cols < 1:
            raise ValueError("b_cols must be positive")
        # The fault injectors (and every consumer of ``mask``) assume a
        # boolean array; a float/int mask would silently change bitflip
        # targeting and nnz arithmetic.  Exact 0/1 arrays are coerced,
        # anything else is rejected.
        if self.mask.dtype != np.bool_:
            mask = np.asarray(self.mask)
            if not np.isin(mask, (0, 1)).all():
                raise ValueError(
                    f"mask must be boolean (or exactly 0/1), got dtype {mask.dtype} "
                    "with values outside {0, 1}"
                )
            self.mask = mask.astype(bool)

    @property
    def shape(self):
        return self.values.shape

    @property
    def sparse_values(self) -> np.ndarray:
        return np.where(self.mask, self.values, 0.0)

    @property
    def nnz(self) -> int:
        return int(self.mask.sum())

    @property
    def sparsity(self) -> float:
        return 1.0 - self.nnz / self.mask.size

    @property
    def macs(self) -> int:
        """Sparse multiply-accumulates (dense would be rows*cols*b_cols)."""
        return self.nnz * self.b_cols

    @property
    def dense_macs(self) -> int:
        return self.values.size * self.b_cols


def synthetic_weights(
    rows: int,
    cols: int,
    seed: int = 0,
    row_scale_sigma: float = 0.7,
    col_scale_sigma: float = 0.4,
    dead_row_fraction: float = 0.05,
    local_structure: float = 0.5,
    block_scale_sigma: float = 0.6,
    block: int = 8,
) -> np.ndarray:
    """Weights with trained-layer statistics (see module docstring).

    ``local_structure`` adds per-block row/column scale fields on top of
    the global channel scales: within each ``block x block`` tile some
    rows or columns dominate, independently per tile.  Trained layers
    show exactly this local anisotropy -- it is what gives TBS's
    per-block direction choice its edge over matrix-level row-wise
    patterns (Fig. 4(b), Fig. 17).
    """
    if rows < 1 or cols < 1:
        raise ValueError("weight dims must be positive")
    rng = np.random.default_rng(seed)
    base = rng.laplace(0.0, 1.0, size=(rows, cols))
    row_scale = np.exp(rng.normal(0.0, row_scale_sigma, size=(rows, 1)))
    col_scale = np.exp(rng.normal(0.0, col_scale_sigma, size=(1, cols)))
    weights = base * row_scale * col_scale
    if local_structure > 0:
        n_br = -(-rows // block)
        n_bc = -(-cols // block)
        # Per-block, per-lane log-scales in both orientations.
        local_rows = rng.normal(0.0, local_structure, size=(n_br, n_bc, block, 1))
        local_cols = rng.normal(0.0, local_structure, size=(n_br, n_bc, 1, block))
        # Whole-block importance varies too (feature-map locality): this
        # is what produces the fully dense / fully empty blocks that the
        # paper's Fig. 17 buckets as "other".
        block_scale = rng.normal(0.0, block_scale_sigma, size=(n_br, n_bc, 1, 1))
        field = np.exp(local_rows + local_cols + block_scale)
        full = field.transpose(0, 2, 1, 3).reshape(n_br * block, n_bc * block)
        weights = weights * full[:rows, :cols]
    if dead_row_fraction > 0:
        dead = rng.random(rows) < dead_row_fraction
        weights[dead] *= 0.01
    return weights


def pattern_mask(
    weights: np.ndarray,
    family: PatternFamily,
    sparsity: float,
    m: int = DEFAULT_M,
    tsolver: Optional[str] = None,
):
    """Project ``weights`` onto ``family`` at ``sparsity``.

    Returns ``(mask, tbs)`` where ``tbs`` is the :class:`TBSResult`
    metadata for the TBS family and ``None`` otherwise.  This is the
    per-family dispatch shared by :func:`build_workload` and the
    scenario generators (stencil/MoE/inference24), including the
    paper's STC caveat: the TS baseline always runs 4:8, so its
    effective sparsity saturates at 50%.
    """
    if family is PatternFamily.TBS:
        tbs = tbs_sparsify(weights, m=m, sparsity=sparsity)
        return tbs.mask, tbs
    if family is PatternFamily.NMT:
        mask, _ = transposable_sparsify(weights, m=m, sparsity=sparsity, backend=tsolver)
        return mask, None
    if family is PatternFamily.TS:
        # NVIDIA STC supports only the fixed 2:4/4:8 ratio.
        effective = min(sparsity, 0.5)
        return make_mask(weights, PatternSpec(PatternFamily.TS, m=m, sparsity=effective)), None
    return make_mask(weights, PatternSpec(family, m=m, sparsity=sparsity)), None


def build_workload(
    layer: LayerSpec,
    family: PatternFamily,
    sparsity: float,
    m: int = DEFAULT_M,
    seed: int = 0,
    scale: int = 1,
    tsolver: Optional[str] = None,
) -> GEMMWorkload:
    """Generate weights for ``layer`` and prune them with ``family``.

    ``scale`` downsamples the layer dimensions (see
    :meth:`LayerSpec.scaled`) to keep the Python block-level simulation
    tractable; ratios between architectures are preserved.  ``tsolver``
    picks the :mod:`repro.core.tsolvers` backend for the NMT family
    (other families ignore it).

    Note the STC caveat from the paper (Table I footnote): the TS
    baseline always runs 4:8, so its effective sparsity saturates at 50%.
    """
    spec_layer = layer.scaled(scale, m=m) if scale > 1 else layer
    weights = synthetic_weights(spec_layer.rows, spec_layer.cols, seed=seed)
    mask, tbs = pattern_mask(weights, family, sparsity, m=m, tsolver=tsolver)

    return GEMMWorkload(
        name=f"{spec_layer.name}[{family.name}@{sparsity:.0%}]",
        values=weights,
        mask=mask,
        b_cols=spec_layer.b_cols,
        m=m,
        family=family,
        tbs=tbs,
    )
