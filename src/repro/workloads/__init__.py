"""Workloads: layer GEMM shapes, synthetic weights and model bundles."""

from .from_model import workload_from_layer, workloads_from_model
from .generator import GEMMWorkload, build_workload, pattern_mask, synthetic_weights
from .inference24 import INFERENCE24_SPARSITY, build_inference24_workloads, inference24_layers
from .layers import (
    MODEL_LAYERS,
    LayerSpec,
    bert_layers,
    opt_6_7b_layers,
    resnet18_layers,
    resnet50_layers,
)
from .models import ISO_ACCURACY_SPARSITY, ModelWorkload, build_model_workload
from .moe import MoESpec, build_moe_workloads, moe_combined_sparsity, route_tokens
from .scenarios import (
    SCENARIO_ARCH,
    SCENARIO_FAMILIES,
    SCENARIO_PATTERNS,
    ScenarioBundle,
    build_scenario,
)
from .stencils import STENCILS, StencilSpec, build_stencil_workload, stencil_tap_mask

__all__ = [
    "GEMMWorkload",
    "INFERENCE24_SPARSITY",
    "ISO_ACCURACY_SPARSITY",
    "LayerSpec",
    "MODEL_LAYERS",
    "ModelWorkload",
    "MoESpec",
    "SCENARIO_ARCH",
    "SCENARIO_FAMILIES",
    "SCENARIO_PATTERNS",
    "STENCILS",
    "ScenarioBundle",
    "StencilSpec",
    "bert_layers",
    "build_inference24_workloads",
    "build_model_workload",
    "build_moe_workloads",
    "build_scenario",
    "build_stencil_workload",
    "build_workload",
    "inference24_layers",
    "moe_combined_sparsity",
    "opt_6_7b_layers",
    "pattern_mask",
    "resnet18_layers",
    "resnet50_layers",
    "route_tokens",
    "stencil_tap_mask",
    "synthetic_weights",
    "workload_from_layer",
    "workloads_from_model",
]
