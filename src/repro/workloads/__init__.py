"""Workloads: layer GEMM shapes, synthetic weights and model bundles."""

from .from_model import workload_from_layer, workloads_from_model
from .generator import GEMMWorkload, build_workload, synthetic_weights
from .layers import (
    MODEL_LAYERS,
    LayerSpec,
    bert_layers,
    opt_6_7b_layers,
    resnet18_layers,
    resnet50_layers,
)
from .models import ISO_ACCURACY_SPARSITY, ModelWorkload, build_model_workload

__all__ = [
    "GEMMWorkload",
    "ISO_ACCURACY_SPARSITY",
    "LayerSpec",
    "MODEL_LAYERS",
    "ModelWorkload",
    "bert_layers",
    "build_model_workload",
    "build_workload",
    "opt_6_7b_layers",
    "resnet18_layers",
    "resnet50_layers",
    "synthetic_weights",
    "workload_from_layer",
    "workloads_from_model",
]
