"""Deterministic fault injection, ECC modeling and SDC campaigns.

TB-STC's correctness rests on compressed metadata (DDC Info words, CSR
row pointers, occupancy bitmaps, SDC validity flags) decoding back into
exactly the mask the DVPE computes with; one flipped bit silently
reshapes the GEMM.  This package stresses that trust boundary:

* :mod:`~repro.faults.injectors` -- seeded bit flips in encoded
  payloads, stuck-at mask faults, DRAM transaction perturbation,
  checkpoint-file corruption;
* :mod:`~repro.faults.ecc`       -- parity / SECDED protection model for
  metadata words, with storage and energy overheads that flow into the
  traffic and energy reports;
* :mod:`~repro.faults.campaign`  -- reproducible Monte-Carlo campaigns
  classifying each injection as benign / corrected / detected /
  uncorrected / silent, per (format, fault model) cell;
* :mod:`~repro.faults.chaos`     -- deterministic chaos drills for the
  sweep engine's supervision layer (cells that crash, hang, raise or
  corrupt on their first N attempts), driven programmatically or via
  ``REPRO_SWEEP_CHAOS``.
"""

from .campaign import (
    CLASSES,
    FAULT_MODELS,
    CampaignResult,
    CampaignSpec,
    CellOutcome,
    classify_decode,
    render_campaign,
    run_campaign,
    run_cell,
    run_trial,
)
from .chaos import CHAOS_MODES, ChaosConfig, ChaosError, chaos_from_env
from .ecc import ECC_MODES, ECCConfig, adjudicate, ecc_overhead_bytes, ecc_words
from .injectors import (
    FAULT_TARGETS,
    BitFlip,
    InjectionRecord,
    corrupt_file,
    inject_mask_stuck_at,
    inject_payload_bitflips,
    payload_targets,
)

__all__ = [
    "CHAOS_MODES",
    "CLASSES",
    "ECC_MODES",
    "FAULT_MODELS",
    "FAULT_TARGETS",
    "BitFlip",
    "CampaignResult",
    "CampaignSpec",
    "CellOutcome",
    "ChaosConfig",
    "ChaosError",
    "ECCConfig",
    "InjectionRecord",
    "adjudicate",
    "chaos_from_env",
    "classify_decode",
    "corrupt_file",
    "ecc_overhead_bytes",
    "ecc_words",
    "inject_mask_stuck_at",
    "inject_payload_bitflips",
    "payload_targets",
    "render_campaign",
    "run_campaign",
    "run_cell",
    "run_trial",
]
