"""Seeded Monte-Carlo fault campaigns over formats x fault models.

A campaign answers the production question the repro's energy/traffic
tables cannot: *when a bit goes wrong, does this stack notice?*  Each
trial builds a fresh TBS workload, encodes it in one storage format,
injects one fault from one model, and classifies the outcome:

* ``benign``      -- the decoded matrix is bit-identical to the truth
  (the flip landed in padding, a duplicated index slot, dead offset
  bits, or a latent stuck-at);
* ``corrected``   -- the metadata ECC repaired the flip and decode is
  exact;
* ``uncorrected`` -- the ECC *saw* the corruption but could not repair
  it (parity, or a double flip under SECDED): the access faults loudly;
* ``detected``    -- no ECC signal, but the decode crashed or the
  runtime invariant layer (:mod:`repro.runtime.checks`) flagged the
  decoded matrix (nnz bookkeeping, NaN/Inf screen, N:M pattern check);
* ``silent``      -- the decode produced a *different matrix* and
  nothing noticed: silent data corruption, the number the campaign
  exists to measure.

Classification honours the ambient check level: under ``off`` only
hard crashes count as detection, so the campaign doubles as a
measurement of how much coverage the invariant layer itself buys.

Campaigns are bit-reproducible: every trial derives its generator from
``(seed, format, model, trial)`` through ``np.random.default_rng``'s
SeedSequence, so ``repro faults --seed 0`` prints the same table on
every machine.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.patterns import PatternFamily, PatternSpec
from ..core.sparsify import tbs_sparsify
from ..formats.base import EncodedMatrix, EncodeSpec, SparseFormat
from ..formats.registry import available_formats, format_index, get_format
from ..obs import metrics as obs_metrics
from ..obs import tracer as obs_tracer
from ..obs.state import enabled as _obs_enabled
from ..hw.dram import TransactionFaultModel, perturb_trace
from ..runtime.checks import InvariantError, check_mask, get_check_level
from .ecc import ECCConfig, adjudicate
from .injectors import (
    InjectionRecord,
    inject_mask_stuck_at,
    inject_payload_bitflips,
    payload_targets,
)

__all__ = [
    "CLASSES",
    "FAULT_MODELS",
    "CampaignSpec",
    "CellOutcome",
    "CampaignResult",
    "classify_decode",
    "run_trial",
    "run_cell",
    "run_campaign",
    "render_campaign",
]

#: Classification outcomes, worst last.
CLASSES = ("benign", "corrected", "detected", "uncorrected", "silent")

#: Fault models a campaign can sweep.  ``meta_flip_x2`` flips two bits
#: of the *same* protected word -- SECDED's detect-but-not-correct case.
FAULT_MODELS = (
    "value_flip",
    "index_flip",
    "meta_flip",
    "meta_flip_x2",
    "mask_stuck0",
    "mask_stuck1",
    "dram_drop",
    "dram_dup",
    "dram_corrupt",
)

_MODEL_TARGET = {"value_flip": "values", "index_flip": "indices", "meta_flip": "metadata",
                 "meta_flip_x2": "metadata"}


@dataclass(frozen=True)
class CampaignSpec:
    """One campaign's shape: what to inject, where, how often."""

    formats: Tuple[str, ...] = available_formats()
    models: Tuple[str, ...] = FAULT_MODELS
    trials: int = 30
    seed: int = 0
    rows: int = 32
    cols: int = 32
    m: int = 8
    sparsity: float = 0.75
    ecc: ECCConfig = field(default_factory=ECCConfig)
    check_level: str = "warn"

    def __post_init__(self) -> None:
        for fmt in self.formats:
            if fmt not in available_formats():
                raise ValueError(f"unknown format {fmt!r}")
        for model in self.models:
            if model not in FAULT_MODELS:
                raise ValueError(f"unknown fault model {model!r}")
        if self.trials < 1:
            raise ValueError("trials must be >= 1")


@dataclass
class CellOutcome:
    """Aggregated classifications for one (format, fault model) cell."""

    format_name: str
    model: str
    counts: Dict[str, int] = field(default_factory=lambda: {c: 0 for c in CLASSES})
    skipped: int = 0  #: trials where the model does not apply to the format

    @property
    def trials(self) -> int:
        return sum(self.counts.values())

    @property
    def sdc_rate(self) -> float:
        """Fraction of applicable trials that corrupted data silently."""
        return self.counts["silent"] / self.trials if self.trials else 0.0

    @property
    def coverage(self) -> float:
        """Of the trials that mattered (non-benign), how many were caught."""
        harmful = self.trials - self.counts["benign"]
        if harmful <= 0:
            return 1.0
        caught = self.counts["corrected"] + self.counts["detected"] + self.counts["uncorrected"]
        return caught / harmful


@dataclass
class CampaignResult:
    """All cells of one campaign plus the spec that produced them."""

    spec: CampaignSpec
    cells: List[CellOutcome] = field(default_factory=list)
    sweep_summary: Optional[str] = None  #: engine stats when run via repro.sweep
    #: Keys of cells that failed, when run with ``allow_partial=True``.
    failed_cells: List[str] = field(default_factory=list)

    def cell(self, fmt: str, model: str) -> Optional[CellOutcome]:
        for c in self.cells:
            if c.format_name == fmt and c.model == model:
                return c
        return None


def _trial_rng(spec: CampaignSpec, fmt: str, model: str, trial: int) -> np.random.Generator:
    return np.random.default_rng(
        [spec.seed, format_index(fmt), FAULT_MODELS.index(model), trial]
    )


def _build_case(spec: CampaignSpec, rng: np.random.Generator):
    """One fresh (values, tbs, mask, expected) TBS workload for a trial."""
    values = rng.normal(size=(spec.rows, spec.cols))
    values[values == 0] = 1.0  # keep nnz bookkeeping unambiguous
    tbs = tbs_sparsify(values, m=spec.m, sparsity=spec.sparsity)
    expected = np.where(tbs.mask, values, 0.0)
    return values, tbs, expected


def _integrity_flagged(decoded: np.ndarray, encoded: EncodedMatrix,
                       pattern_spec: Optional[PatternSpec], level: str) -> bool:
    """Would the runtime invariant layer flag this decoded matrix?

    Only checks a deployed stack could actually run without ground
    truth: the stored nnz counter, a NaN/Inf screen (the divergence
    watchdog's first test), and the declared N:M structure of the
    decoded occupancy.
    """
    if level == "off":
        return False
    if int(np.count_nonzero(decoded)) != encoded.nnz:
        return True
    if not np.all(np.isfinite(decoded)):
        return True
    if pattern_spec is not None:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            try:
                if not check_mask(decoded != 0.0, pattern_spec, level="warn"):
                    return True
            except InvariantError:  # pragma: no cover - warn level cannot raise
                return True
    return False


def classify_decode(
    fmt: SparseFormat,
    encoded: EncodedMatrix,
    expected: np.ndarray,
    record: Optional[InjectionRecord] = None,
    ecc: Optional[ECCConfig] = None,
    pattern_spec: Optional[PatternSpec] = None,
    level: Optional[str] = None,
) -> str:
    """Classify one injected fault's end-to-end outcome (see module doc)."""
    level = get_check_level(level)
    if (
        record is not None
        and record.injected
        and record.target == "metadata"
        and ecc is not None
        and ecc.enabled
    ):
        verdict = adjudicate(record.meta_word_flips, ecc)
        if verdict == "corrected":
            record.revert(encoded)
            if _obs_enabled():
                obs_metrics.counter_add("faults.ecc_corrections")
            return _classified("corrected")
        if verdict == "detected":
            return _classified("uncorrected")
        # undetected: the corruption sails past the ECC; fall through to
        # the software-visible checks below.
    try:
        decoded = fmt.decode(encoded)
    except Exception:  # noqa: BLE001 - any decode crash is a loud detection
        return _classified("detected")
    if decoded.shape != expected.shape:
        return _classified("detected")
    if np.array_equal(decoded, expected):
        return _classified("benign")
    if _integrity_flagged(decoded, encoded, pattern_spec, level):
        return _classified("detected")
    return _classified("silent")


def _classified(outcome: str) -> str:
    """Bump the per-class counter (when obs is on) and pass through."""
    if _obs_enabled():
        obs_metrics.counter_add(f"faults.class.{outcome}")
    return outcome


def _make_format(name: str, m: int) -> SparseFormat:
    if name == "sdc":
        return get_format("sdc", group_rows=m)  # the hardware row-group variant
    return get_format(name)


def run_trial(spec: CampaignSpec, fmt_name: str, model: str, trial: int) -> Optional[str]:
    """One injection trial; returns a class or None when not applicable."""
    rng = _trial_rng(spec, fmt_name, model, trial)
    values, tbs, expected = _build_case(spec, rng)
    fmt = _make_format(fmt_name, spec.m)
    pattern_spec = PatternSpec(PatternFamily.TBS, m=spec.m, sparsity=spec.sparsity)
    tbs_arg = tbs if fmt_name in ("ddc", "bcsrcoo") else None
    enc_spec = EncodeSpec(tbs=tbs_arg, block_size=spec.m)

    if model in _MODEL_TARGET:
        target = _MODEL_TARGET[model]
        if target not in payload_targets(fmt_name):
            return None
        encoded = fmt.encode(expected, enc_spec)
        record = inject_payload_bitflips(
            encoded,
            target,
            rng,
            nbits=2 if model == "meta_flip_x2" else 1,
            same_word=model == "meta_flip_x2",
            word_bits=spec.ecc.word_bits,
        )
        if not record.injected:
            return None
        return classify_decode(
            fmt, encoded, expected, record,
            ecc=spec.ecc, pattern_spec=pattern_spec, level=spec.check_level,
        )

    if model in ("mask_stuck0", "mask_stuck1"):
        stuck = 0 if model == "mask_stuck0" else 1
        faulty_mask, _, changed = inject_mask_stuck_at(tbs.mask, rng, stuck)
        if not changed:
            return "benign"  # latent fault: the bit already held that value
        # The TBS metadata no longer matches the corrupted mask, so DDC
        # must re-infer per-block patterns from what it actually sees.
        encoded = fmt.encode(np.where(faulty_mask, values, 0.0), EncodeSpec(block_size=spec.m))
        return classify_decode(
            fmt, encoded, expected, None,
            ecc=None, pattern_spec=pattern_spec, level=spec.check_level,
        )

    # DRAM transaction faults: exactly one faulted transaction per trial.
    encoded = fmt.encode(expected, enc_spec)
    if not encoded.segments:
        return None
    kind = {"dram_drop": "drop", "dram_dup": "duplicate", "dram_corrupt": "corrupt"}[model]
    idx = int(rng.integers(len(encoded.segments)))
    model_probs = TransactionFaultModel(**{f"p_{kind}": 1.0})
    one = perturb_trace([encoded.segments[idx]], model_probs, rng)
    trace = list(encoded.segments[:idx]) + one.segments + list(encoded.segments[idx + 1:])
    perturbed = replace(one, segments=trace)
    if perturbed.dropped:
        # Missing bytes trip the DMA byte counter: always a loud fault.
        return "detected" if perturbed.length_check_fails(encoded.traced_bytes) else "silent"
    if perturbed.duplicated:
        return "benign"  # same bytes land twice; only bandwidth is wasted
    # In-flight corruption: garble payload bits of the transferred data.
    target = "values" if "values" in payload_targets(fmt_name) else "metadata"
    record = inject_payload_bitflips(encoded, target, rng, nbits=1)
    if not record.injected:
        return None
    return classify_decode(
        fmt, encoded, expected, record,
        ecc=None,  # link corruption happens past the storage-side ECC
        pattern_spec=pattern_spec, level=spec.check_level,
    )


def run_cell(spec: CampaignSpec, fmt_name: str, model: str) -> CellOutcome:
    """All trials of one (format, fault model) cell."""
    outcome = CellOutcome(fmt_name, model)
    with obs_tracer.span(f"faults.cell.{fmt_name}.{model}", trials=spec.trials):
        for trial in range(spec.trials):
            result = run_trial(spec, fmt_name, model, trial)
            if result is None:
                outcome.skipped += 1
            else:
                outcome.counts[result] += 1
    return outcome


def run_campaign(
    spec: CampaignSpec,
    runner=None,
    workers: Optional[int] = None,
    cache_dir=None,
    resume: bool = False,
    progress=None,
    options=None,
    allow_partial: bool = False,
) -> CampaignResult:
    """Sweep every (format, model) cell through the sweep engine.

    ``allow_partial=True`` degrades cell failures from an exception to
    an omission: failed cells are skipped in the aggregated table (and
    listed in ``result.failed_cells``) instead of raising
    :class:`repro.sweep.SweepCellsFailed`.

    Cells shard across ``workers`` processes (:mod:`repro.sweep`); every
    trial seeds from ``(seed, format, model, trial)``, so the table is
    bit-identical at any worker count.  With ``cache_dir``, finished
    cells persist on disk and ``resume=True`` replays them, so a killed
    campaign restarts where it left off.  ``options`` (a
    :class:`repro.sweep.SweepOptions`) threads the supervised-executor
    knobs -- per-cell ``timeout``, transient ``retries``, executor
    choice -- through to :func:`repro.sweep.run_sweep`.

    ``runner`` (a :class:`repro.runtime.runner.ExperimentRunner`) is the
    legacy serial cell-isolation path and is mutually exclusive with the
    sweep knobs.
    """
    if runner is not None:
        result = CampaignResult(spec)
        for fmt_name in spec.formats:
            for model in spec.models:
                cell_key = f"faults-{fmt_name}-{model}"
                cell = runner.run(cell_key, run_cell, spec=spec, fmt_name=fmt_name, model=model)
                if cell.ok:
                    result.cells.append(cell.value)
        return result

    from ..sweep import SweepCell, SweepSpec, configured_workers, run_sweep

    cells = [
        SweepCell(
            key=f"faults-{fmt_name}-{model}",
            fn=run_cell,
            kwargs={"spec": spec, "fmt_name": fmt_name, "model": model},
        )
        for fmt_name in spec.formats
        for model in spec.models
    ]
    sweep = run_sweep(
        SweepSpec("faults", tuple(cells)),
        workers=configured_workers(workers),
        cache_dir=cache_dir,
        resume=resume,
        progress=progress,
        strict=not allow_partial,
        options=options,
    )
    result = CampaignResult(spec)
    result.sweep_summary = sweep.summary()
    result.failed_cells = [c.key for c in sweep.failures]
    settled = sweep.values()
    for fmt_name in spec.formats:
        for model in spec.models:
            key = f"faults-{fmt_name}-{model}"
            if allow_partial and key not in settled:
                continue
            result.cells.append(sweep.value(key))
    return result


def render_campaign(result: CampaignResult) -> str:
    """The per-cell SDC-rate / detection-coverage table."""
    from ..analysis import render_table

    header = ["format", "fault model", "trials", *CLASSES, "SDC rate", "coverage"]
    rows = []
    for cell in result.cells:
        if cell.trials == 0:
            continue
        rows.append([
            cell.format_name,
            cell.model,
            str(cell.trials),
            *[str(cell.counts[c]) for c in CLASSES],
            f"{cell.sdc_rate:.1%}",
            f"{cell.coverage:.1%}",
        ])
    ecc = result.spec.ecc
    lines = [render_table(header, rows)]
    lines.append(
        f"ecc={ecc.mode} (+{ecc.check_bits} check bits / {ecc.word_bits}-bit word)"
        if ecc.enabled else "ecc=none (metadata unprotected)"
    )
    return "\n".join(lines)
