"""Parity / SECDED protection model for format metadata words.

Compressed-format metadata (DDC Info-table entries, CSR row pointers,
bitmap occupancy words, SDC validity flags) is the highest-leverage
target for a bit flip: a single wrong metadata bit silently reshapes the
decoded matrix, which is exactly the silent-data-corruption mode Mishra
et al.'s Sparse-Tensor-Core analysis worries about.  This module models
the standard hardware countermeasures at word granularity:

* ``parity``  -- one check bit per ``word_bits`` metadata bits; detects
  any odd number of flips in a word, corrects nothing;
* ``secded``  -- Hamming single-error-correct / double-error-detect;
  corrects one flip per word, detects two, and (like real SECDED) can
  *miscorrect* three or more.

The model is deliberately arithmetic, not a bit-level codec: the
injectors record how many bits flipped in each protected word, and
:func:`adjudicate` maps that histogram onto the code's guarantees.  The
storage cost (:func:`ecc_overhead_bytes`) flows into the format traffic
model and the per-word encode/decode energy into the energy model, so a
protected architecture variant is directly comparable to an unprotected
one on the simulator's usual axes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

__all__ = [
    "ECC_MODES",
    "ECCConfig",
    "ecc_overhead_bytes",
    "ecc_words",
    "adjudicate",
]

ECC_MODES = ("none", "parity", "secded")

#: Adjudication outcomes for one injection against one ECC config.
#: ``corrected`` -- every flipped word had exactly the code's correction
#: capability; ``detected`` -- at least one word was flagged but not
#: fixable; ``undetected`` -- some word's corruption slipped through.
ADJUDICATIONS = ("corrected", "detected", "undetected")


def _hamming_check_bits(data_bits: int) -> int:
    """Minimal r with ``2**r >= data_bits + r + 1`` (plus 1 for SECDED)."""
    r = 1
    while (1 << r) < data_bits + r + 1:
        r += 1
    return r + 1  # extra overall-parity bit upgrades SEC to SECDED


@dataclass(frozen=True)
class ECCConfig:
    """Protection applied to format metadata, word by word."""

    mode: str = "none"
    word_bits: int = 16

    def __post_init__(self) -> None:
        if self.mode not in ECC_MODES:
            raise ValueError(f"ecc mode must be one of {ECC_MODES}, got {self.mode!r}")
        if self.word_bits < 1:
            raise ValueError("word_bits must be positive")

    @property
    def enabled(self) -> bool:
        return self.mode != "none"

    @property
    def check_bits(self) -> int:
        """Check bits appended to each ``word_bits``-bit metadata word."""
        if self.mode == "none":
            return 0
        if self.mode == "parity":
            return 1
        return _hamming_check_bits(self.word_bits)

    @property
    def overhead_ratio(self) -> float:
        """Extra storage per protected bit (check bits / data bits)."""
        return self.check_bits / self.word_bits


def ecc_overhead_bytes(meta_bytes: float, config: ECCConfig) -> int:
    """Check-bit storage for ``meta_bytes`` of protected metadata."""
    if not config.enabled or meta_bytes <= 0:
        return 0
    words = math.ceil(meta_bytes * 8 / config.word_bits)
    return int(math.ceil(words * config.check_bits / 8))


def ecc_words(meta_bytes: float, config: ECCConfig) -> int:
    """How many protected words ``meta_bytes`` of metadata occupies."""
    if not config.enabled or meta_bytes <= 0:
        return 0
    return int(math.ceil(meta_bytes * 8 / config.word_bits))


def adjudicate(flips_per_word: Mapping[int, int], config: ECCConfig) -> str:
    """Outcome of the code checking words with the given flip counts.

    ``flips_per_word`` maps a word index to how many of its bits an
    injector flipped (zero-flip entries are ignored).  The aggregate
    outcome is pessimistic: one undetected word poisons the whole
    access, and one detected-but-uncorrectable word forces a fault
    report even if every other word was corrected.
    """
    if not config.enabled:
        return "undetected"
    worst = "corrected"
    any_flips = False
    for flips in flips_per_word.values():
        if flips <= 0:
            continue
        any_flips = True
        if config.mode == "parity":
            outcome = "detected" if flips % 2 == 1 else "undetected"
        else:  # secded
            if flips == 1:
                outcome = "corrected"
            elif flips == 2:
                outcome = "detected"
            else:  # >= 3 flips can alias to a valid-looking syndrome
                outcome = "undetected"
        if outcome == "undetected":
            return "undetected"
        if outcome == "detected":
            worst = "detected"
    if not any_flips:
        return "corrected"  # nothing to fix: the clean codeword passes
    return worst
