"""Deterministic chaos injection for the sweep engine's supervision layer.

The supervised executor (:mod:`repro.sweep.executors`) claims to survive
workers that die, hang, or raise.  This module is the harness that
*proves* it: a picklable cell wrapper (:func:`chaotic`) that, for a
deterministically-chosen subset of cells, misbehaves on the first ``N``
attempts -- ``os._exit`` (crash), sleep past the deadline (hang), raise
a :class:`ChaosError`, or return a corrupted value -- and then computes
the real cell value on later attempts.

Two invariants the harness exists to pin:

* **Determinism under retry** -- a chaos-ridden sweep with retries
  produces byte-identical :class:`~repro.sweep.engine.SweepResult`
  values to a clean serial run (the wrapper eventually calls the real
  cell body with the real kwargs, and cell bodies are pure functions of
  their payload);
* **Cache transparency** -- the engine hashes the *clean* cell payload,
  so chaos runs share cache entries with clean runs and ``--resume``
  after killing a chaos sweep recomputes only missing cells.

Attempt counts must survive worker death (the crashing process cannot
carry its own memory of having crashed), so they live in an on-disk
**ledger**: one tiny counter file per cell key, bumped *before* the
chaos action fires.  Sweep attempts for one cell are strictly
sequential, so the ledger needs no locking -- only crash-safe
write-rename publication.

Activation is either programmatic (``run_sweep(chaos=ChaosConfig(...))``
/ ``SweepOptions.chaos``) or ambient via environment variables, which is
how CI injects chaos under an unmodified ``repro sweep`` invocation:

* ``REPRO_SWEEP_CHAOS`` -- ``"mode[+mode...][:first_n]"``, e.g.
  ``"crash+hang:1"`` (default ``first_n`` 1);
* ``REPRO_SWEEP_CHAOS_SEED`` -- selector seed (default 0);
* ``REPRO_SWEEP_CHAOS_FRACTION`` -- fraction of cells afflicted
  (default 1.0);
* ``REPRO_SWEEP_CHAOS_HANG_S`` -- hang duration in seconds (default
  3600; must exceed the sweep's ``--timeout`` to trip it);
* ``REPRO_SWEEP_CHAOS_DIR`` -- ledger directory (default: a fresh
  temporary directory per ``run_sweep`` call).
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from ..sweep.spec import derive_seed, resolve_fn

__all__ = [
    "CHAOS_MODES",
    "ChaosConfig",
    "ChaosError",
    "attempt_count",
    "chaos_from_env",
    "chaotic",
    "wrap_payload",
]

#: Misbehaviours :func:`chaotic` can inject on a cell's first N attempts.
CHAOS_MODES = ("crash", "hang", "raise", "corrupt")


class ChaosError(RuntimeError):
    """The deterministic exception ``mode="raise"`` injects.

    Deliberately an ordinary exception: the retry policy must classify
    it as a deterministic *failed* outcome and never retry it.
    """


@dataclass(frozen=True)
class ChaosConfig:
    """What to inject, into which cells, for how many attempts.

    ``modes`` with more than one entry assigns each afflicted cell one
    mode, chosen by :func:`~repro.sweep.spec.derive_seed` over
    ``(seed, key)`` -- stable across runs, worker counts, and executors.
    ``fraction`` < 1 afflicts only that deterministic share of cells.
    ``exit_code`` is what crash-mode workers ``os._exit`` with; the
    supervisor reports it in the cell's error string.
    """

    modes: Tuple[str, ...] = ("crash",)
    first_n: int = 1
    seed: int = 0
    fraction: float = 1.0
    hang_s: float = 3600.0
    exit_code: int = 17
    ledger_dir: Optional[str] = None

    def __post_init__(self) -> None:
        modes = tuple(self.modes)
        object.__setattr__(self, "modes", modes)
        if not modes:
            raise ValueError("chaos needs at least one mode")
        bad = set(modes) - set(CHAOS_MODES)
        if bad:
            raise ValueError(f"unknown chaos modes {sorted(bad)}; choose from {CHAOS_MODES}")
        if self.first_n < 1:
            raise ValueError(f"first_n must be >= 1, got {self.first_n}")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")
        if self.hang_s <= 0:
            raise ValueError(f"hang_s must be > 0, got {self.hang_s}")

    def mode_for(self, key: str) -> Optional[str]:
        """The mode afflicting cell ``key``, or None if it is spared."""
        if self.fraction < 1.0:
            draw = derive_seed(self.seed, "victim", key) % 1_000_000
            if draw >= int(self.fraction * 1_000_000):
                return None
        return self.modes[derive_seed(self.seed, "mode", key) % len(self.modes)]


def chaos_from_env(environ: Optional[Mapping[str, str]] = None) -> Optional[ChaosConfig]:
    """Build a :class:`ChaosConfig` from ``REPRO_SWEEP_CHAOS*``, or None."""
    env = os.environ if environ is None else environ
    spec = env.get("REPRO_SWEEP_CHAOS", "").strip()
    if not spec:
        return None
    modes_part, _, n_part = spec.partition(":")
    modes = tuple(m.strip() for m in modes_part.split("+") if m.strip())
    try:
        first_n = int(n_part) if n_part else 1
        return ChaosConfig(
            modes=modes,
            first_n=first_n,
            seed=int(env.get("REPRO_SWEEP_CHAOS_SEED", "0")),
            fraction=float(env.get("REPRO_SWEEP_CHAOS_FRACTION", "1.0")),
            hang_s=float(env.get("REPRO_SWEEP_CHAOS_HANG_S", "3600")),
            ledger_dir=env.get("REPRO_SWEEP_CHAOS_DIR") or None,
        )
    except ValueError as exc:
        raise ValueError(f"malformed REPRO_SWEEP_CHAOS configuration {spec!r}: {exc}") from exc


# ---------------------------------------------------------------------------
# Attempt ledger: per-key counters that survive worker death.
# ---------------------------------------------------------------------------


def _ledger_path(ledger_dir: Union[str, Path], key: str) -> Path:
    digest = hashlib.sha256(key.encode()).hexdigest()[:16]
    return Path(ledger_dir) / f"{digest}.attempt"


def attempt_count(ledger_dir: Union[str, Path], key: str) -> int:
    """Attempts recorded so far for ``key`` (0 when never attempted)."""
    path = _ledger_path(ledger_dir, key)
    try:
        return int(path.read_text())
    except (OSError, ValueError):
        return 0


def _bump_attempt(ledger_dir: Union[str, Path], key: str) -> int:
    """Record one more attempt for ``key`` and return its 1-based number.

    Published write-rename so a crash *after* the bump (the whole point
    of crash mode) still leaves a consistent counter behind.
    """
    path = _ledger_path(ledger_dir, key)
    path.parent.mkdir(parents=True, exist_ok=True)
    attempt = attempt_count(ledger_dir, key) + 1
    fd, tmp = tempfile.mkstemp(prefix=".tmp-attempt-", dir=path.parent)
    with os.fdopen(fd, "w") as fh:
        fh.write(str(attempt))
    os.replace(tmp, path)
    return attempt


# ---------------------------------------------------------------------------
# The cell wrapper (module-level and picklable: workers re-import it).
# ---------------------------------------------------------------------------


def chaotic(
    fn: str,
    kwargs: Dict[str, Any],
    mode: str,
    first_n: int,
    ledger_dir: str,
    key: str,
    hang_s: float = 3600.0,
    exit_code: int = 17,
) -> Any:
    """Misbehave on the first ``first_n`` attempts, then run the real cell.

    ``fn``/``kwargs`` are the wrapped cell's ``module:qualname`` reference
    and arguments; the ledger under ``ledger_dir`` decides which attempt
    this is.  Crash mode must only run under the supervised executor --
    inline it takes the submitting process with it.
    """
    attempt = _bump_attempt(ledger_dir, key)
    if attempt <= first_n:
        if mode == "crash":
            os._exit(exit_code)
        elif mode == "hang":
            # Long enough for the supervisor's deadline to fire; if the
            # sweep has no timeout this stalls, which is the failure the
            # harness exists to demonstrate.
            time.sleep(hang_s)
        elif mode == "raise":
            raise ChaosError(f"injected deterministic failure on attempt {attempt} of {key}")
        elif mode == "corrupt":
            return {"__chaos_corrupt__": True, "key": key, "attempt": attempt}
        else:  # pragma: no cover - ChaosConfig validates modes
            raise ValueError(f"unknown chaos mode {mode!r}")
    return resolve_fn(fn)(**kwargs)


def wrap_payload(
    payload: Dict[str, Any], config: ChaosConfig, ledger_dir: Union[str, Path]
) -> Dict[str, Any]:
    """Rewrap one engine payload so its fn runs under :func:`chaotic`.

    Spared cells (``fraction`` < 1) come back unchanged.  Only the
    *execution* payload is rewritten -- the engine keeps hashing the
    clean cell payload for the cache, which is what makes chaos runs
    cache-compatible with clean runs.
    """
    mode = config.mode_for(payload["key"])
    if mode is None:
        return payload
    wrapped = dict(payload)
    wrapped["fn"] = "repro.faults.chaos:chaotic"
    wrapped["kwargs"] = {
        "fn": payload["fn"],
        "kwargs": payload["kwargs"],
        "mode": mode,
        "first_n": config.first_n,
        "ledger_dir": str(ledger_dir),
        "key": payload["key"],
        "hang_s": config.hang_s,
        "exit_code": config.exit_code,
    }
    return wrapped
