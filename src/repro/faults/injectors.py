"""Deterministic fault injectors for encoded payloads, masks and files.

Every injector draws from a caller-supplied ``np.random.Generator`` and
records exactly what it flipped, so a campaign is bit-reproducible from
its seed and a SECDED model can *undo* a correctable flip.  Three fault
surfaces are covered:

* **encoded payloads** -- single/multi bit flips in a storage format's
  value, index or metadata arrays (:func:`inject_payload_bitflips`),
  with per-format target resolution (``dense`` has no indices, DDC's
  metadata is its 16-bit Info words, bitmap's is the occupancy bitmap);
* **masks** -- stuck-at-0/1 faults on individual mask bits
  (:func:`inject_mask_stuck_at`), modelling corruption upstream of the
  encoder;
* **files** -- truncation or byte garbling of checkpoint/cache files
  (:func:`corrupt_file`), exercising the checkpoint digest verification.

Flips are applied **in place** on the ``EncodedMatrix`` arrays; use
:meth:`InjectionRecord.revert` (bit flips are involutive) to restore.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

from ..formats.base import EncodedMatrix

__all__ = [
    "FAULT_TARGETS",
    "BitFlip",
    "InjectionRecord",
    "payload_targets",
    "inject_payload_bitflips",
    "inject_mask_stuck_at",
    "corrupt_file",
]

#: Injectable targets, in the order fault models name them.
FAULT_TARGETS = ("values", "indices", "metadata")

#: Which arrays of each format realise each target.  A format missing a
#: target (dense has no indices) is simply not injectable there.
_TARGET_ARRAYS: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "dense": {"values": ("dense",), "indices": (), "metadata": ()},
    "csr": {"values": ("values",), "indices": ("col_idx",), "metadata": ("row_ptr",)},
    "sdc": {"values": ("values",), "indices": ("indices",), "metadata": ("valid",)},
    "ddc": {"values": ("block_values",), "indices": ("block_indices",), "metadata": ("block_meta",)},
    "bitmap": {"values": ("values",), "indices": (), "metadata": ("bitmap",)},
    "bcsrcoo": {
        "values": ("values",),
        "indices": ("bitmaps",),
        "metadata": ("row_ptr", "col_idx", "row_idx", "t_order", "block_ptr"),
    },
}

#: DDC Info-word field layout: 1b dimension + 3b ratio + 12b offset.
_DDC_DIR_BITS = 1
_DDC_N_BITS = 3


@dataclass(frozen=True)
class BitFlip:
    """One flipped bit: which array, which element, which bit."""

    key: str  #: array key inside ``EncodedMatrix.arrays``
    element: int  #: flat element index (slot within a block for DDC payloads)
    bit: int  #: bit within the element's representation
    word: int  #: protected-metadata word index (-1 when not metadata)
    block: int = -1  #: DDC payload block slot (-1 for flat arrays)


@dataclass
class InjectionRecord:
    """Everything one injection did, sufficient to adjudicate and undo."""

    format_name: str
    target: str
    flips: List[BitFlip] = field(default_factory=list)

    @property
    def injected(self) -> bool:
        return bool(self.flips)

    @property
    def meta_word_flips(self) -> Dict[int, int]:
        """Flips per protected metadata word (ECC adjudication input)."""
        words: Dict[int, int] = {}
        for flip in self.flips:
            if flip.word >= 0:
                words[flip.word] = words.get(flip.word, 0) + 1
        return words

    def revert(self, encoded: EncodedMatrix) -> None:
        """Undo the injection (XOR flips are their own inverse)."""
        for flip in self.flips:
            _apply_flip(encoded, self.format_name, self.target, flip)


def payload_targets(format_name: str) -> Tuple[str, ...]:
    """Targets actually injectable for ``format_name``."""
    table = _TARGET_ARRAYS.get(format_name)
    if table is None:
        raise ValueError(f"unknown format {format_name!r}")
    return tuple(t for t in FAULT_TARGETS if table[t])


def _flip_ndarray_bit(arr: np.ndarray, element: int, bit: int) -> None:
    """Flip one bit of one element, in place (bool arrays toggle)."""
    flat = arr.reshape(-1)
    if arr.dtype == bool:
        flat[element] = not flat[element]
        return
    view = flat[element : element + 1].view(np.uint8)
    view[bit // 8] ^= np.uint8(1 << (bit % 8))


def _flip_ddc_info_bit(meta: dict, bit: int) -> None:
    """Flip one bit of a DDC Info word (direction | n | offset fields)."""
    if bit < _DDC_DIR_BITS:
        meta["direction"] ^= 1
    elif bit < _DDC_DIR_BITS + _DDC_N_BITS:
        meta["n"] ^= 1 << (bit - _DDC_DIR_BITS)
    else:
        meta["offset"] ^= 1 << (bit - _DDC_DIR_BITS - _DDC_N_BITS)


def _apply_flip(encoded: EncodedMatrix, format_name: str, target: str, flip: BitFlip) -> None:
    arr = encoded.arrays[flip.key]
    if format_name == "ddc" and target == "metadata":
        _flip_ddc_info_bit(arr[flip.element], flip.bit)
    elif flip.block >= 0:  # DDC payload: object array of per-block ndarrays
        _flip_ndarray_bit(arr[flip.block], flip.element, flip.bit)
    else:
        _flip_ndarray_bit(arr, flip.element, flip.bit)


def _bits_per_element(arr: np.ndarray) -> int:
    # A bool "element" is one logical bit (bitmap / validity metadata).
    return 1 if arr.dtype == bool else arr.dtype.itemsize * 8


def _metadata_word(format_name: str, arr: np.ndarray, element: int, bit: int, word_bits: int) -> int:
    """Index of the protected word a metadata bit falls in."""
    if format_name == "ddc":
        return element  # one 16-bit Info word per block
    global_bit = element * _bits_per_element(arr) + bit
    return global_bit // word_bits


def inject_payload_bitflips(
    encoded: EncodedMatrix,
    target: str,
    rng: np.random.Generator,
    nbits: int = 1,
    same_word: bool = False,
    word_bits: int = 16,
) -> InjectionRecord:
    """Flip ``nbits`` distinct random bits of one target array, in place.

    ``same_word=True`` confines all flips to one protected metadata word
    (the interesting case for SECDED's double-error detection).  Returns
    a record with no flips when the format has no such target or the
    target array is empty -- the caller classifies that trial as not
    applicable.
    """
    if target not in FAULT_TARGETS:
        raise ValueError(f"target must be one of {FAULT_TARGETS}, got {target!r}")
    if nbits < 1:
        raise ValueError("nbits must be >= 1")
    record = InjectionRecord(encoded.format_name, target)
    keys = _TARGET_ARRAYS[encoded.format_name][target]
    keys = [k for k in keys if encoded.arrays.get(k) is not None and encoded.arrays[k].size]
    if not keys:
        return record
    key = keys[int(rng.integers(len(keys)))]
    arr = encoded.arrays[key]

    if encoded.format_name == "ddc" and target == "metadata":
        block = int(rng.integers(arr.size))
        bits = _sample_bits(rng, word_bits, nbits)
        for bit in bits:
            flip = BitFlip(key, block, int(bit), word=block)
            _apply_flip(encoded, encoded.format_name, target, flip)
            record.flips.append(flip)
        return record

    if encoded.format_name == "ddc":
        candidates = [i for i in range(arr.size) if arr[i].size]
        if not candidates:
            return record
        block = candidates[int(rng.integers(len(candidates)))]
        per_elem = _bits_per_element(arr[block])
        total_bits = int(arr[block].size) * per_elem
        for pos in _sample_bits(rng, total_bits, min(nbits, total_bits)):
            flip = BitFlip(key, int(pos) // per_elem, int(pos) % per_elem, word=-1, block=block)
            _apply_flip(encoded, encoded.format_name, target, flip)
            record.flips.append(flip)
        return record

    per_elem = _bits_per_element(arr)
    total_bits = arr.size * per_elem
    if same_word and target == "metadata":
        # Pick one word, then distinct bits within its span.
        n_words = max(1, -(-total_bits // word_bits))
        word = int(rng.integers(n_words))
        lo = word * word_bits
        span = min(word_bits, total_bits - lo)
        positions = lo + _sample_bits(rng, span, min(nbits, span))
    else:
        positions = _sample_bits(rng, total_bits, min(nbits, total_bits))
    for pos in positions:
        element, bit = int(pos) // per_elem, int(pos) % per_elem
        word = (
            _metadata_word(encoded.format_name, arr, element, bit, word_bits)
            if target == "metadata"
            else -1
        )
        flip = BitFlip(key, element, bit, word=word)
        _apply_flip(encoded, encoded.format_name, target, flip)
        record.flips.append(flip)
    return record


def _sample_bits(rng: np.random.Generator, space: int, count: int) -> np.ndarray:
    return rng.choice(space, size=count, replace=False)


def inject_mask_stuck_at(
    mask: np.ndarray, rng: np.random.Generator, stuck: int
) -> Tuple[np.ndarray, Tuple[int, int], bool]:
    """Force one random mask bit to ``stuck`` (0 or 1).

    Returns ``(faulty_mask, (row, col), changed)`` -- ``changed`` is
    False when the chosen bit already held the stuck value (the fault is
    latent and the trial is benign by construction).
    """
    if stuck not in (0, 1):
        raise ValueError("stuck must be 0 or 1")
    mask = np.asarray(mask, dtype=bool)
    if mask.size == 0:
        raise ValueError("cannot inject into an empty mask")
    r = int(rng.integers(mask.shape[0]))
    c = int(rng.integers(mask.shape[1]))
    faulty = mask.copy()
    changed = bool(faulty[r, c]) != bool(stuck)
    faulty[r, c] = bool(stuck)
    return faulty, (r, c), changed


def corrupt_file(
    path: Union[str, Path],
    rng: np.random.Generator,
    mode: str = "flip",
    nbytes: int = 8,
) -> str:
    """Corrupt a file on disk: ``flip`` random bytes or ``truncate`` it.

    Models a torn write / bit-rotted checkpoint.  Returns a short
    description of what was done (for campaign logs).
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"cannot corrupt empty file {path}")
    if mode == "truncate":
        keep = int(rng.integers(len(data)))
        path.write_bytes(bytes(data[:keep]))
        return f"truncated {path.name} to {keep}/{len(data)} bytes"
    if mode != "flip":
        raise ValueError(f"mode must be 'flip' or 'truncate', got {mode!r}")
    n = min(nbytes, len(data))
    offsets = rng.choice(len(data), size=n, replace=False)
    for off in offsets:
        data[int(off)] ^= int(rng.integers(1, 256))
    path.write_bytes(bytes(data))
    return f"flipped {n} bytes of {path.name}"
