"""Storage <-> computation format conversion (Sec. V-B, Fig. 9).

Reduction-dimension (row-wise) blocks are stored in exactly the order the
DVPEs consume them, so they need no conversion (Fig. 9(a)).  Independent-
dimension (column-wise) blocks are stored column-major to stay compact
but must be consumed row-major (Fig. 9(b)); the codec's queue group does
that reordering on the fly (Fig. 9(c)):

* every timestep it accepts ``in_width`` (2) elements, each tagged with
  its reduction-dimension index ``Rid``;
* elements land in the queue selected by their ``Rid`` group;
* as soon as a queue holds ``threshold`` (2) elements it emits them to
  the PE array (the merger network arbitrates when several queues are
  ready);
* at the final timestep the merger flushes whatever remains, combining
  partial queues into full output beats.

This module is the *functional* model -- it produces the exact output
schedule and cycle count; :mod:`repro.hw.codec` layers the hardware
accounting (queue occupancy, conflicts, energy) on top of it.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Sequence, Tuple

import numpy as np

from ..core.patterns import Direction

__all__ = ["StorageElement", "ConversionSchedule", "convert_block", "block_storage_stream"]


@dataclass(frozen=True)
class StorageElement:
    """One non-zero in storage order: value + its (Rid, Iid) coordinates."""

    value: float
    rid: int  # index along the reduction dimension (block column)
    iid: int  # index along the independent dimension (block row)


@dataclass
class ConversionSchedule:
    """Result of converting one block from storage to computation format."""

    outputs: List[List[StorageElement]] = field(default_factory=list)
    input_cycles: int = 0
    flush_cycles: int = 0
    max_queue_depth: int = 0
    conflicts: int = 0  # timesteps where >1 queue was ready (merger work)

    @property
    def cycles(self) -> int:
        return max(self.input_cycles, len(self.outputs))

    @property
    def elements_out(self) -> int:
        return sum(len(beat) for beat in self.outputs)


def block_storage_stream(block: np.ndarray, direction: Direction) -> List[StorageElement]:
    """Elements of one block in storage order.

    ROW blocks are stored row-major (their storage order already matches
    computation order); COL blocks are stored column-major.
    """
    block = np.asarray(block)
    if block.ndim != 2 or block.shape[0] != block.shape[1]:
        raise ValueError(f"expected a square block, got shape {block.shape}")
    elements: List[StorageElement] = []
    if direction is Direction.ROW:
        for i, j in zip(*np.nonzero(block)):
            elements.append(StorageElement(float(block[i, j]), rid=int(j), iid=int(i)))
    else:
        for j, i in zip(*np.nonzero(block.T)):
            elements.append(StorageElement(float(block[i, j]), rid=int(j), iid=int(i)))
    return elements


def convert_block(
    stream: Sequence[StorageElement],
    n_queues: int = 8,
    in_width: int = 2,
    out_width: int = 2,
    threshold: int = 2,
) -> ConversionSchedule:
    """Simulate the queue-group conversion of one block's element stream.

    The computation format groups elements by their independent-dimension
    index (``Iid``), i.e. by the output row the PE accumulates into;
    queues are selected by ``Iid % n_queues``.

    Returns the per-timestep output beats plus occupancy statistics.
    """
    if in_width < 1 or out_width < 1 or threshold < 1:
        raise ValueError("widths and threshold must be positive")
    queues: "OrderedDict[int, Deque[StorageElement]]" = OrderedDict(
        (q, deque()) for q in range(n_queues)
    )
    schedule = ConversionSchedule()
    pending = deque(stream)

    while pending:
        # Input stage: accept up to in_width elements this timestep.
        for _ in range(min(in_width, len(pending))):
            element = pending.popleft()
            queues[element.iid % n_queues].append(element)
        schedule.input_cycles += 1
        schedule.max_queue_depth = max(
            schedule.max_queue_depth, max(len(q) for q in queues.values())
        )
        # Output stage: emit from one ready queue (merger arbitration).
        ready = [q for q in queues.values() if len(q) >= threshold]
        if len(ready) > 1:
            schedule.conflicts += 1
        if ready:
            beat = [ready[0].popleft() for _ in range(min(out_width, len(ready[0])))]
            schedule.outputs.append(beat)

    # Final flush: the merger combines remaining elements across queues.
    leftovers: List[StorageElement] = []
    for q in queues.values():
        leftovers.extend(q)
    while leftovers:
        beat, leftovers = leftovers[:out_width], leftovers[out_width:]
        schedule.outputs.append(beat)
        schedule.flush_cycles += 1
    return schedule
