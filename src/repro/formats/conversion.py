"""Storage <-> computation format conversion (Sec. V-B, Fig. 9).

Reduction-dimension (row-wise) blocks are stored in exactly the order the
DVPEs consume them, so they need no conversion (Fig. 9(a)).  Independent-
dimension (column-wise) blocks are stored column-major to stay compact
but must be consumed row-major (Fig. 9(b)); the codec's queue group does
that reordering on the fly (Fig. 9(c)):

* every timestep it accepts ``in_width`` (2) elements, each tagged with
  its reduction-dimension index ``Rid``;
* elements land in the queue selected by their ``Rid`` group;
* as soon as a queue holds ``threshold`` (2) elements it emits them to
  the PE array (the merger network arbitrates when several queues are
  ready);
* at the final timestep the merger flushes whatever remains, combining
  partial queues into full output beats.

This module is the *functional* model -- it produces the exact output
schedule and cycle count; :mod:`repro.hw.codec` layers the hardware
accounting (queue occupancy, conflicts, energy) on top of it.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, List, Sequence

import numpy as np

from ..core.patterns import Direction

__all__ = [
    "StorageElement",
    "ConversionSchedule",
    "convert_block",
    "block_storage_stream",
    "batch_conversion_cycles",
]


@dataclass(frozen=True)
class StorageElement:
    """One non-zero in storage order: value + its (Rid, Iid) coordinates."""

    value: float
    rid: int  # index along the reduction dimension (block column)
    iid: int  # index along the independent dimension (block row)


@dataclass
class ConversionSchedule:
    """Result of converting one block from storage to computation format."""

    outputs: List[List[StorageElement]] = field(default_factory=list)
    input_cycles: int = 0
    flush_cycles: int = 0
    max_queue_depth: int = 0
    conflicts: int = 0  # timesteps where >1 queue was ready (merger work)

    @property
    def cycles(self) -> int:
        return max(self.input_cycles, len(self.outputs))

    @property
    def elements_out(self) -> int:
        return sum(len(beat) for beat in self.outputs)


def block_storage_stream(block: np.ndarray, direction: Direction) -> List[StorageElement]:
    """Elements of one block in storage order.

    ROW blocks are stored row-major (their storage order already matches
    computation order); COL blocks are stored column-major.
    """
    block = np.asarray(block)
    if block.ndim != 2 or block.shape[0] != block.shape[1]:
        raise ValueError(f"expected a square block, got shape {block.shape}")
    elements: List[StorageElement] = []
    if direction is Direction.ROW:
        for i, j in zip(*np.nonzero(block)):
            elements.append(StorageElement(float(block[i, j]), rid=int(j), iid=int(i)))
    else:
        for j, i in zip(*np.nonzero(block.T)):
            elements.append(StorageElement(float(block[i, j]), rid=int(j), iid=int(i)))
    return elements


def convert_block(
    stream: Sequence[StorageElement],
    n_queues: int = 8,
    in_width: int = 2,
    out_width: int = 2,
    threshold: int = 2,
) -> ConversionSchedule:
    """Simulate the queue-group conversion of one block's element stream.

    The computation format groups elements by their independent-dimension
    index (``Iid``), i.e. by the output row the PE accumulates into;
    queues are selected by ``Iid % n_queues``.

    Returns the per-timestep output beats plus occupancy statistics.
    """
    if in_width < 1 or out_width < 1 or threshold < 1:
        raise ValueError("widths and threshold must be positive")
    queues: "OrderedDict[int, Deque[StorageElement]]" = OrderedDict(
        (q, deque()) for q in range(n_queues)
    )
    schedule = ConversionSchedule()
    pending = deque(stream)

    while pending:
        # Input stage: accept up to in_width elements this timestep.
        for _ in range(min(in_width, len(pending))):
            element = pending.popleft()
            queues[element.iid % n_queues].append(element)
        schedule.input_cycles += 1
        schedule.max_queue_depth = max(
            schedule.max_queue_depth, max(len(q) for q in queues.values())
        )
        # Output stage: emit from one ready queue (merger arbitration).
        ready = [q for q in queues.values() if len(q) >= threshold]
        if len(ready) > 1:
            schedule.conflicts += 1
        if ready:
            beat = [ready[0].popleft() for _ in range(min(out_width, len(ready[0])))]
            schedule.outputs.append(beat)

    # Final flush: the merger combines remaining elements across queues.
    leftovers: List[StorageElement] = []
    for q in queues.values():
        leftovers.extend(q)
    while leftovers:
        beat, leftovers = leftovers[:out_width], leftovers[out_width:]
        schedule.outputs.append(beat)
        schedule.flush_cycles += 1
    return schedule


def batch_conversion_cycles(
    blocks: np.ndarray,
    n_queues: int,
    in_width: int = 2,
    out_width: int = 2,
    threshold: int = 2,
) -> np.ndarray:
    """Conversion cycle counts of many COL-direction blocks at once.

    Emulates :func:`convert_block` on the column-major storage stream of
    every ``(m, m)`` block in ``blocks`` (shape ``(n_blocks, m, m)``)
    simultaneously: per timestep, each block accepts ``in_width``
    elements into its queues (selected by ``Iid % n_queues``), and the
    first ready queue (lowest index with >= ``threshold`` elements, the
    merger's arbitration order) emits one beat of <= ``out_width``.
    Leftovers flush in ``ceil(remaining / out_width)`` combined beats.

    Only the cycle count (``max(input_cycles, output_beats)``) is
    produced -- the element schedule itself is not materialised, which
    is what makes the batching worthwhile.  Bit-exact with the scalar
    path; the loop implementation stays available via
    ``REPRO_REFERENCE_IMPL=1``.
    """
    if in_width < 1 or out_width < 1 or threshold < 1:
        raise ValueError("widths and threshold must be positive")
    blocks = np.asarray(blocks)
    if blocks.ndim != 3 or blocks.shape[1] != blocks.shape[2]:
        raise ValueError(f"expected (n_blocks, m, m) blocks, got {blocks.shape}")
    n_blocks = blocks.shape[0]
    if n_blocks == 0:
        return np.zeros(0, dtype=np.int64)

    # Column-major storage stream: nonzero coordinates of block.T in
    # (rid, iid) lexicographic order; the queue key is the row index iid.
    transposed_nz = blocks.transpose(0, 2, 1) != 0
    b_idx, _, i_idx = np.nonzero(transposed_nz)
    nnz = transposed_nz.sum(axis=(1, 2)).astype(np.int64)
    stream_len = int(nnz.max()) if nnz.size else 0
    offsets = np.concatenate([[0], np.cumsum(nnz)[:-1]])
    position = np.arange(b_idx.size) - offsets[b_idx]
    iids = np.zeros((n_blocks, max(stream_len, 1)), dtype=np.int64)
    iids[b_idx, position] = i_idx

    input_cycles = -(-nnz // in_width)
    horizon = int(input_cycles.max()) if nnz.size else 0
    queue_len = np.zeros((n_blocks, n_queues), dtype=np.int64)
    consumed = np.zeros(n_blocks, dtype=np.int64)
    beats = np.zeros(n_blocks, dtype=np.int64)
    emitted = np.zeros(n_blocks, dtype=np.int64)
    rows = np.arange(n_blocks)
    for t in range(horizon):
        # A block participates in a timestep only while its stream is
        # still feeding in (convert_block loops exactly input_cycles
        # times; flush happens afterwards).
        active = t < input_cycles
        # Input stage: accept up to in_width elements per block.
        for w in range(in_width):
            src = consumed + w
            ok = active & (src < nnz)
            queues = iids[rows, np.minimum(src, stream_len - 1)] % n_queues
            np.add.at(queue_len, (rows[ok], queues[ok]), 1)
        consumed = np.where(active, np.minimum(consumed + in_width, nnz), consumed)
        # Output stage: one beat from the first ready queue per block
        # (the merger arbitrates lowest queue index first).
        ready = queue_len >= threshold
        any_ready = ready.any(axis=1) & active
        first = np.argmax(ready, axis=1)
        beat = np.minimum(out_width, queue_len[rows, first])
        take = np.where(any_ready, beat, 0)
        queue_len[rows, first] -= take
        beats += any_ready
        emitted += take

    flush_beats = -(-(nnz - emitted) // out_width)
    return np.maximum(input_cycles, beats + flush_beats)
