"""Blocked-CSR-COO hybrid -- one encoding, both consumption orientations.

The stk/MegaBlocks line of work stores a block-sparse matrix as blocked
CSR (row-pointer over block rows, per-block column index, contiguous
per-block payloads) and adds two COO-style side tables at encode time:
the explicit block-*row* index of every block and a precomputed
permutation of the blocks sorted by (block column, block row).  The CSR
structure serves the forward (block-row-major) product; the permutation
serves the transposed product by walking the *same stored payloads* in
block-column-major order -- no transposed copy, no re-encode.

Per-block payload here is a packed occupancy bitmap (``ceil(m*m/8)``
bytes) followed by the block's non-zero values row-major, so each block
is one contiguous run in either orientation.  The price of
transposability is the COO side tables (a few bytes per block) and the
loss of forward-stream perfection: the transposed walk visits payload
runs out of address order, so it fragments into one burst run per block
instead of one stream.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..perf import timed
from .base import (
    CSR_PTR_BYTES,
    VALUE_BYTES,
    EncodedMatrix,
    EncodeSpec,
    Segment,
    SparseFormat,
    apply_mask,
)

__all__ = ["BCSRCOOFormat"]

#: Per-block COO/CSR side-table entry: 16-bit block column + 16-bit block
#: row + 16-bit transpose-permutation slot + 32-bit payload offset.
BCSRCOO_BLOCK_META_BYTES = 2 + 2 + 2 + 4


class BCSRCOOFormat(SparseFormat):
    """Blocked CSR with a COO transpose index built once at encode time."""

    name = "bcsrcoo"

    @timed("formats.bcsrcoo.encode")
    def _encode(self, values: np.ndarray, spec: EncodeSpec) -> EncodedMatrix:
        dense = apply_mask(values, spec.mask)
        rows, cols = dense.shape
        m = spec.effective_block_size
        n_block_rows = -(-rows // m) if rows else 0
        n_block_cols = -(-cols // m) if cols else 0

        row_idx: List[int] = []
        col_idx: List[int] = []
        bitmaps: List[np.ndarray] = []
        val_parts: List[np.ndarray] = []
        block_nnz: List[int] = []
        row_ptr = np.zeros(n_block_rows + 1, dtype=np.int64)
        for br in range(n_block_rows):
            for bc in range(n_block_cols):
                tile = dense[br * m : (br + 1) * m, bc * m : (bc + 1) * m]
                occ = tile != 0.0
                count = int(np.count_nonzero(occ))
                if count == 0:
                    continue
                bitmap = np.zeros((m, m), dtype=bool)
                bitmap[: occ.shape[0], : occ.shape[1]] = occ
                row_idx.append(br)
                col_idx.append(bc)
                bitmaps.append(bitmap)
                val_parts.append(tile[occ])  # row-major within the block
                block_nnz.append(count)
            row_ptr[br + 1] = len(row_idx)

        nblk = len(row_idx)
        row_idx_arr = np.asarray(row_idx, dtype=np.int64)
        col_idx_arr = np.asarray(col_idx, dtype=np.int64)
        nnz_arr = np.asarray(block_nnz, dtype=np.int64)
        block_ptr = np.zeros(nblk + 1, dtype=np.int64)
        np.cumsum(nnz_arr, out=block_ptr[1:])
        vals = np.concatenate(val_parts) if val_parts else np.zeros(0)
        bitmap_arr = (
            np.stack(bitmaps) if bitmaps else np.zeros((0, m, m), dtype=bool)
        )
        # The COO transpose permutation: stored blocks reordered by
        # (block column, block row).  Built once, here; the transposed
        # trace and decode walk it without ever re-encoding.
        t_order = (
            np.lexsort((row_idx_arr, col_idx_arr)) if nblk else np.zeros(0, dtype=np.int64)
        )

        nnz = int(nnz_arr.sum())
        bitmap_block_bytes = int(math.ceil(m * m / 8.0))
        value_bytes = nnz * VALUE_BYTES
        index_bytes = nblk * bitmap_block_bytes
        meta_bytes = (n_block_rows + 1) * CSR_PTR_BYTES + nblk * BCSRCOO_BLOCK_META_BYTES

        # Byte layout: side tables first, then per-block payloads
        # (bitmap + values) back to back in stored (forward) order.
        segments: List[Segment] = []
        if meta_bytes:
            segments.append(Segment(0, meta_bytes))
        addr = meta_bytes
        for b in range(nblk):
            nbytes = bitmap_block_bytes + int(nnz_arr[b]) * VALUE_BYTES
            segments.append(Segment(addr, nbytes))
            addr += nbytes

        return EncodedMatrix(
            format_name=self.name,
            shape=(rows, cols),
            nnz=nnz,
            value_bytes=value_bytes,
            index_bytes=index_bytes,
            meta_bytes=meta_bytes,
            segments=segments,
            arrays={
                "row_ptr": row_ptr,
                "row_idx": row_idx_arr,
                "col_idx": col_idx_arr,
                "block_ptr": block_ptr,
                "t_order": t_order,
                "bitmaps": bitmap_arr,
                "values": vals,
                "m": np.array(m),
            },
        )

    def _block_byte_offsets(self, encoded: EncodedMatrix) -> np.ndarray:
        """Byte address of each stored block's payload run."""
        m = int(encoded.arrays["m"])
        block_ptr = encoded.arrays["block_ptr"]
        bitmap_block_bytes = int(math.ceil(m * m / 8.0))
        nnz_per_block = np.diff(block_ptr)
        blk_bytes = bitmap_block_bytes + nnz_per_block * VALUE_BYTES
        offsets = np.zeros(blk_bytes.size + 1, dtype=np.int64)
        np.cumsum(blk_bytes, out=offsets[1:])
        return encoded.meta_bytes + offsets

    def transposed_trace(self, encoded: EncodedMatrix) -> List[Segment]:
        """Side tables, then the stored payload runs walked in ``t_order``.

        Same blocks, same bytes as the forward stream -- only the
        inter-block order changes, following the precomputed COO
        transpose permutation.  Each block stays one contiguous run, so
        the transposed pass costs one burst run per block rather than
        CSR's one fragment per element.
        """
        t_order = encoded.arrays["t_order"]
        offsets = self._block_byte_offsets(encoded)
        segments: List[Segment] = []
        if encoded.meta_bytes:
            segments.append(Segment(0, encoded.meta_bytes))
        for b in t_order:
            b = int(b)
            segments.append(Segment(int(offsets[b]), int(offsets[b + 1] - offsets[b])))
        return segments

    @timed("formats.bcsrcoo.decode")
    def decode(self, encoded: EncodedMatrix) -> np.ndarray:
        rows, cols = encoded.shape
        m = int(encoded.arrays["m"])
        dense = np.zeros((rows, cols))
        row_idx = encoded.arrays["row_idx"]
        col_idx = encoded.arrays["col_idx"]
        block_ptr = encoded.arrays["block_ptr"]
        bitmaps = encoded.arrays["bitmaps"]
        vals = encoded.arrays["values"]
        for b in range(row_idx.size):
            r0, c0 = int(row_idx[b]) * m, int(col_idx[b]) * m
            h, w = min(m, rows - r0), min(m, cols - c0)
            occ = bitmaps[b][:h, :w]
            tile = np.zeros((h, w))
            tile[occ] = vals[int(block_ptr[b]) : int(block_ptr[b + 1])]
            dense[r0 : r0 + h, c0 : c0 + w] = tile
        return dense

    def decode_transposed(self, encoded: EncodedMatrix) -> np.ndarray:
        """Native transposed decode: scatter blocks along ``t_order``.

        Walks the stored payloads exactly as the transposed consumer
        would -- per-block transpose of the bitmap scatter -- without
        materialising the forward matrix first (and without re-encoding).
        """
        rows, cols = encoded.shape
        m = int(encoded.arrays["m"])
        out = np.zeros((cols, rows))
        row_idx = encoded.arrays["row_idx"]
        col_idx = encoded.arrays["col_idx"]
        block_ptr = encoded.arrays["block_ptr"]
        bitmaps = encoded.arrays["bitmaps"]
        vals = encoded.arrays["values"]
        for b in encoded.arrays["t_order"]:
            b = int(b)
            r0, c0 = int(row_idx[b]) * m, int(col_idx[b]) * m
            h, w = min(m, rows - r0), min(m, cols - c0)
            occ = bitmaps[b][:h, :w]
            tile = np.zeros((h, w))
            tile[occ] = vals[int(block_ptr[b]) : int(block_ptr[b + 1])]
            out[c0 : c0 + w, r0 : r0 + h] = tile.T
        return out
