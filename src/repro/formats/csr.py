"""Compressed Sparse Row -- minimal redundancy, poor contiguity (Fig. 7(b)).

CSR stores exactly the non-zeros plus indices, so almost no redundant
bytes are fetched.  The problem the paper highlights is *consumption
order*: the tensor core drains the matrix block by block, but one block's
worth of a CSR matrix is scattered across ``M`` distant row fragments, so
the trace degenerates into many short, non-contiguous bursts and the
effective bandwidth drops below 38.2%.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.blocks import iter_blocks
from ..perf import timed, use_reference_impl
from .base import (
    CSR_INDEX_BYTES,
    CSR_PTR_BYTES,
    VALUE_BYTES,
    EncodedMatrix,
    EncodeSpec,
    Segment,
    SparseFormat,
    apply_mask,
)


class CSRFormat(SparseFormat):
    """Textbook CSR with a block-major consumption trace."""

    name = "csr"

    @timed("formats.csr.encode")
    def _encode(self, values: np.ndarray, spec: EncodeSpec) -> EncodedMatrix:
        mask, block_size = spec.mask, spec.effective_block_size
        dense = apply_mask(values, mask)
        rows, cols = dense.shape

        if use_reference_impl():
            row_ptr = np.zeros(rows + 1, dtype=np.int64)
            col_idx_parts: List[np.ndarray] = []
            val_parts: List[np.ndarray] = []
            for r in range(rows):
                nz = np.nonzero(dense[r])[0]
                row_ptr[r + 1] = row_ptr[r] + nz.size
                col_idx_parts.append(nz)
                val_parts.append(dense[r, nz])
            col_idx = (
                np.concatenate(col_idx_parts) if col_idx_parts else np.zeros(0, dtype=np.int64)
            )
            vals = np.concatenate(val_parts) if val_parts else np.zeros(0)
        else:
            # np.nonzero walks the matrix row-major, which *is* CSR
            # element order; bincount of the row ids gives the pointers.
            r_idx, col_idx = np.nonzero(dense)
            row_ptr = np.zeros(rows + 1, dtype=np.int64)
            np.cumsum(np.bincount(r_idx, minlength=rows), out=row_ptr[1:])
            col_idx = col_idx.astype(np.int64, copy=False)
            vals = dense[r_idx, col_idx]
        nnz = int(vals.size)

        segments = self._block_major_trace(row_ptr, col_idx, rows, cols, block_size)
        return EncodedMatrix(
            format_name=self.name,
            shape=(rows, cols),
            nnz=nnz,
            value_bytes=nnz * VALUE_BYTES,
            index_bytes=nnz * CSR_INDEX_BYTES,
            meta_bytes=(rows + 1) * CSR_PTR_BYTES,
            segments=segments,
            arrays={"row_ptr": row_ptr, "col_idx": col_idx, "values": vals},
        )

    def _block_major_trace(
        self,
        row_ptr: np.ndarray,
        col_idx: np.ndarray,
        rows: int,
        cols: int,
        block_size: int,
    ) -> List[Segment]:
        """Reads issued when draining the matrix block by block.

        We model the accelerator-friendly packed layout where each
        non-zero's value and column index travel together (4 bytes per
        element).  A block still touches, for each of its rows, only the
        short contiguous run of that row's non-zeros whose columns fall
        inside the block -- and those runs are scattered across the whole
        array, which is the non-contiguity the paper calls out.
        """
        elem_bytes = VALUE_BYTES + CSR_INDEX_BYTES
        segments: List[Segment] = []
        if use_reference_impl():
            for idx in iter_blocks(rows, cols, block_size):
                for r in range(idx.r0, idx.r0 + idx.height):
                    lo, hi = int(row_ptr[r]), int(row_ptr[r + 1])
                    if lo == hi:
                        continue
                    row_cols = col_idx[lo:hi]
                    start = lo + int(np.searchsorted(row_cols, idx.c0, side="left"))
                    stop = lo + int(np.searchsorted(row_cols, idx.c0 + idx.width, side="left"))
                    count = stop - start
                    if count <= 0:
                        continue
                    segments.append(Segment(start * elem_bytes, count * elem_bytes))
            return segments
        # Each segment is a maximal run of consecutive non-zeros sharing
        # (row, block-column); CSR order already groups them, so the run
        # boundaries fall where either key changes.  Runs are then
        # reordered into the reference's block-major (block-row,
        # block-col, row) emission order.
        n = int(col_idx.size)
        if n == 0:
            return segments
        r_idx = np.repeat(np.arange(rows, dtype=np.int64), np.diff(row_ptr))
        bc = col_idx // block_size
        boundary = np.empty(n, dtype=bool)
        boundary[0] = True
        boundary[1:] = (r_idx[1:] != r_idx[:-1]) | (bc[1:] != bc[:-1])
        starts = np.nonzero(boundary)[0]
        counts = np.diff(np.append(starts, n))
        seg_r = r_idx[starts]
        seg_bc = bc[starts]
        order = np.lexsort((seg_r, seg_bc, seg_r // block_size))
        for i in order:
            segments.append(Segment(int(starts[i]) * elem_bytes, int(counts[i]) * elem_bytes))
        return segments

    def transposed_trace(self, encoded: EncodedMatrix) -> List[Segment]:
        """Reads issued when draining the *transpose* block by block.

        CSR is laid out along rows of the stored matrix, but the
        transposed pass consumes along its columns: consecutive elements
        of one transposed row live one whole CSR row apart.  Every
        element therefore becomes its own 4-byte segment -- the scattered
        -column penalty that makes CSR the worst backward-pass citizen.
        """
        row_ptr = encoded.arrays["row_ptr"]
        col_idx = encoded.arrays["col_idx"]
        rows, _ = encoded.shape
        block_size = encoded.block_size
        n = int(col_idx.size)
        if n == 0:
            return []
        elem_bytes = VALUE_BYTES + CSR_INDEX_BYTES
        r_idx = np.repeat(np.arange(rows, dtype=np.int64), np.diff(row_ptr))
        # Transposed block-major emission: outer key is the stored
        # block-column (= transposed block-row), then the stored
        # block-row, then column (= transposed row), then row.
        order = np.lexsort((r_idx, col_idx, r_idx // block_size, col_idx // block_size))
        return [Segment(int(i) * elem_bytes, elem_bytes) for i in order]

    @timed("formats.csr.decode")
    def decode(self, encoded: EncodedMatrix) -> np.ndarray:
        rows, cols = encoded.shape
        dense = np.zeros((rows, cols))
        row_ptr = encoded.arrays["row_ptr"]
        col_idx = encoded.arrays["col_idx"]
        vals = encoded.arrays["values"]
        # The vectorized scatter expands row ids with np.repeat, which on
        # a corrupted row_ptr (fault injection flips pointer bits) would
        # try to materialise billions of entries.  The loop's slices clamp
        # such pointers for free, so route anything malformed -- and the
        # explicit reference mode -- through the original loop.
        diffs = np.diff(row_ptr)
        well_formed = (
            row_ptr.size == rows + 1
            and int(row_ptr[0]) == 0
            and int(row_ptr[-1]) == vals.size
            and bool((diffs >= 0).all())
        )
        if use_reference_impl() or not well_formed:
            for r in range(rows):
                lo, hi = int(row_ptr[r]), int(row_ptr[r + 1])
                dense[r, col_idx[lo:hi]] = vals[lo:hi]
            return dense
        r_idx = np.repeat(np.arange(rows, dtype=np.int64), diffs)
        dense[r_idx, col_idx] = vals
        return dense
