"""Compressed Sparse Row -- minimal redundancy, poor contiguity (Fig. 7(b)).

CSR stores exactly the non-zeros plus indices, so almost no redundant
bytes are fetched.  The problem the paper highlights is *consumption
order*: the tensor core drains the matrix block by block, but one block's
worth of a CSR matrix is scattered across ``M`` distant row fragments, so
the trace degenerates into many short, non-contiguous bursts and the
effective bandwidth drops below 38.2%.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.blocks import iter_blocks
from .base import (
    CSR_INDEX_BYTES,
    CSR_PTR_BYTES,
    VALUE_BYTES,
    EncodedMatrix,
    Segment,
    SparseFormat,
    apply_mask,
)


class CSRFormat(SparseFormat):
    """Textbook CSR with a block-major consumption trace."""

    name = "csr"

    def encode(
        self,
        values: np.ndarray,
        mask: Optional[np.ndarray] = None,
        tbs=None,
        block_size: int = 8,
    ) -> EncodedMatrix:
        dense = apply_mask(values, mask)
        rows, cols = dense.shape

        row_ptr = np.zeros(rows + 1, dtype=np.int64)
        col_idx_parts: List[np.ndarray] = []
        val_parts: List[np.ndarray] = []
        for r in range(rows):
            nz = np.nonzero(dense[r])[0]
            row_ptr[r + 1] = row_ptr[r] + nz.size
            col_idx_parts.append(nz)
            val_parts.append(dense[r, nz])
        col_idx = np.concatenate(col_idx_parts) if col_idx_parts else np.zeros(0, dtype=np.int64)
        vals = np.concatenate(val_parts) if val_parts else np.zeros(0)
        nnz = int(vals.size)

        segments = self._block_major_trace(row_ptr, col_idx, rows, cols, block_size)
        return EncodedMatrix(
            format_name=self.name,
            shape=(rows, cols),
            nnz=nnz,
            value_bytes=nnz * VALUE_BYTES,
            index_bytes=nnz * CSR_INDEX_BYTES,
            meta_bytes=(rows + 1) * CSR_PTR_BYTES,
            segments=segments,
            arrays={"row_ptr": row_ptr, "col_idx": col_idx, "values": vals},
        )

    def _block_major_trace(
        self,
        row_ptr: np.ndarray,
        col_idx: np.ndarray,
        rows: int,
        cols: int,
        block_size: int,
    ) -> List[Segment]:
        """Reads issued when draining the matrix block by block.

        We model the accelerator-friendly packed layout where each
        non-zero's value and column index travel together (4 bytes per
        element).  A block still touches, for each of its rows, only the
        short contiguous run of that row's non-zeros whose columns fall
        inside the block -- and those runs are scattered across the whole
        array, which is the non-contiguity the paper calls out.
        """
        elem_bytes = VALUE_BYTES + CSR_INDEX_BYTES
        segments: List[Segment] = []
        for idx in iter_blocks(rows, cols, block_size):
            for r in range(idx.r0, idx.r0 + idx.height):
                lo, hi = int(row_ptr[r]), int(row_ptr[r + 1])
                if lo == hi:
                    continue
                row_cols = col_idx[lo:hi]
                start = lo + int(np.searchsorted(row_cols, idx.c0, side="left"))
                stop = lo + int(np.searchsorted(row_cols, idx.c0 + idx.width, side="left"))
                count = stop - start
                if count <= 0:
                    continue
                segments.append(Segment(start * elem_bytes, count * elem_bytes))
        return segments

    def decode(self, encoded: EncodedMatrix) -> np.ndarray:
        rows, cols = encoded.shape
        dense = np.zeros((rows, cols))
        row_ptr = encoded.arrays["row_ptr"]
        col_idx = encoded.arrays["col_idx"]
        vals = encoded.arrays["values"]
        for r in range(rows):
            lo, hi = int(row_ptr[r]), int(row_ptr[r + 1])
            dense[r, col_idx[lo:hi]] = vals[lo:hi]
        return dense
