"""Dense (uncompressed) storage -- the Tensor Core baseline format."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import VALUE_BYTES, EncodedMatrix, Segment, SparseFormat, apply_mask


class DenseFormat(SparseFormat):
    """Row-major dense layout.

    Perfectly contiguous and redundancy-free *as a byte stream*, but the
    stream carries every zero, so the sparse-compute "useful fraction" of
    its traffic equals the matrix density.
    """

    name = "dense"

    def encode(
        self,
        values: np.ndarray,
        mask: Optional[np.ndarray] = None,
        tbs=None,
        block_size: int = 8,
    ) -> EncodedMatrix:
        dense = apply_mask(values, mask)
        rows, cols = dense.shape
        nbytes = rows * cols * VALUE_BYTES
        # One streaming segment: the whole matrix, row-major.
        segments = [Segment(0, nbytes)] if nbytes else []
        return EncodedMatrix(
            format_name=self.name,
            shape=(rows, cols),
            nnz=int(np.count_nonzero(dense)),
            value_bytes=nbytes,
            index_bytes=0,
            meta_bytes=0,
            segments=segments,
            arrays={"dense": dense.copy()},
        )

    def decode(self, encoded: EncodedMatrix) -> np.ndarray:
        return encoded.arrays["dense"].copy()
