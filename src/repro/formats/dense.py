"""Dense (uncompressed) storage -- the Tensor Core baseline format."""

from __future__ import annotations

from typing import List

import numpy as np

from .base import VALUE_BYTES, EncodedMatrix, EncodeSpec, Segment, SparseFormat, apply_mask


class DenseFormat(SparseFormat):
    """Row-major dense layout.

    Perfectly contiguous and redundancy-free *as a byte stream*, but the
    stream carries every zero, so the sparse-compute "useful fraction" of
    its traffic equals the matrix density.
    """

    name = "dense"

    def _encode(self, values: np.ndarray, spec: EncodeSpec) -> EncodedMatrix:
        dense = apply_mask(values, spec.mask)
        rows, cols = dense.shape
        nbytes = rows * cols * VALUE_BYTES
        # One streaming segment: the whole matrix, row-major.
        segments = [Segment(0, nbytes)] if nbytes else []
        return EncodedMatrix(
            format_name=self.name,
            shape=(rows, cols),
            nnz=int(np.count_nonzero(dense)),
            value_bytes=nbytes,
            index_bytes=0,
            meta_bytes=0,
            segments=segments,
            arrays={"dense": dense.copy()},
        )

    def transposed_trace(self, encoded: EncodedMatrix) -> List[Segment]:
        """Column-block-major reads of the row-major layout.

        Same total bytes as the forward stream, but the transposed pass
        walks block columns, so each block contributes one short segment
        per row instead of one whole-matrix stream -- row-major dense
        fragments badly when consumed sideways.
        """
        rows, cols = encoded.shape
        if rows == 0 or cols == 0:
            return []
        bs = encoded.block_size
        segments: List[Segment] = []
        for c0 in range(0, cols, bs):
            width = min(bs, cols - c0)
            for r in range(rows):
                segments.append(Segment((r * cols + c0) * VALUE_BYTES, width * VALUE_BYTES))
        return segments

    def decode(self, encoded: EncodedMatrix) -> np.ndarray:
        return encoded.arrays["dense"].copy()
