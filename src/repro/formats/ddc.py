"""Dual-Dimensional Compression -- the TB-STC storage format (Sec. V-A).

DDC stores the matrix block by block:

* **Inter-block**: an Info table with one 16-bit entry per block --
  1 bit sparsity dimension, 3 bits sparsity ratio (the block's N), and a
  12-bit element offset of the block payload (Fig. 8(a)).
* **Intra-block**: the block's non-zeros compressed *along the block's own
  sparsity dimension* -- row-major runs of N values for reduction-dim
  blocks, column-major runs for independent-dim blocks -- plus 3-bit
  position indices.

Because each block's payload is a single contiguous run and carries no
alignment padding, DDC combines SDC's regular access with CSR's minimal
footprint, which is where the 1.47x bandwidth-utilization gain comes
from.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..core.blocks import extract_block, iter_blocks, scatter_block, split_into_blocks
from ..core.patterns import Direction
from ..perf import timed, use_reference_impl
from .base import (
    DDC_INFO_BYTES,
    VALUE_BYTES,
    EncodedMatrix,
    EncodeSpec,
    Segment,
    SparseFormat,
    apply_mask,
)

__all__ = ["DDCFormat", "infer_block_pattern"]


def infer_block_pattern(block: np.ndarray) -> tuple:
    """Infer (n, direction) of one block from its non-zero structure.

    A block whose rows all carry the same count ``n`` is a valid
    reduction-dim (ROW) block; uniform column counts give COL.  When both
    hold (e.g. empty or dense blocks) ROW wins; when neither holds the
    block is stored at the direction with the smaller maximum count,
    padded to that count (graceful handling of near-TBS inputs).
    Returns ``(n, direction, exact)``.
    """
    row_counts = np.count_nonzero(block, axis=1)
    col_counts = np.count_nonzero(block, axis=0)
    # A lane set is "uniform" when every non-empty lane carries the same
    # count (empty lanes are allowed: the N:M constraint is "at most N",
    # and ragged-edge padding produces legitimately empty lanes).
    row_max = int(row_counts.max())
    col_max = int(col_counts.max())
    row_uniform = set(row_counts.tolist()) <= {0, row_max}
    col_uniform = set(col_counts.tolist()) <= {0, col_max}
    if row_uniform:
        return row_max, Direction.ROW, True
    if col_uniform:
        return col_max, Direction.COL, True
    if row_max <= col_max:
        return row_max, Direction.ROW, False
    return col_max, Direction.COL, False


def _index_bytes(count: int, m: int) -> int:
    """Packed position-index bytes: log2(M) bits per kept element."""
    bits_per = max(1, int(math.ceil(math.log2(max(2, m)))))
    return int(math.ceil(count * bits_per / 8.0))


class DDCFormat(SparseFormat):
    """The paper's dual-dimensional compression format."""

    name = "ddc"

    @timed("formats.ddc.encode")
    def _encode(self, values: np.ndarray, spec: EncodeSpec) -> EncodedMatrix:
        mask, tbs = spec.mask, spec.tbs
        dense = apply_mask(values, mask)
        rows, cols = dense.shape
        m = spec.effective_block_size

        block_meta: List[dict] = []
        payload_vals: List[np.ndarray] = []
        payload_idx: List[np.ndarray] = []
        offset = 0
        value_bytes = 0
        index_bytes = 0
        segments: List[Segment] = []

        block_list = list(iter_blocks(rows, cols, m))
        info_bytes = len(block_list) * DDC_INFO_BYTES
        if info_bytes:
            segments.append(Segment(0, info_bytes))  # streamed Info table
        payload_base = info_bytes

        if use_reference_impl():
            for bidx in block_list:
                block = extract_block(dense, bidx, m)
                if tbs is not None:
                    n = int(tbs.block_n[bidx.row, bidx.col])
                    direction = Direction(int(tbs.block_direction[bidx.row, bidx.col]))
                else:
                    n, direction, _ = infer_block_pattern(block)

                work = block if direction is Direction.ROW else block.T
                vals = np.zeros((m, n))
                idxs = np.zeros((m, n), dtype=np.int64)
                for lane in range(m):
                    nz = np.nonzero(work[lane])[0][:n]
                    vals[lane, : nz.size] = work[lane, nz]
                    idxs[lane, : nz.size] = nz
                    # Pad unused slots with a repeat of the last index so the
                    # decode scatter stays idempotent (value 0 writes).
                    if nz.size < n and nz.size > 0:
                        idxs[lane, nz.size :] = nz[-1]

                count = m * n
                v_bytes = count * VALUE_BYTES
                i_bytes = _index_bytes(count, m)
                block_meta.append(
                    {"n": n, "direction": direction.value, "offset": offset, "row": bidx.row, "col": bidx.col}
                )
                payload_vals.append(vals)
                payload_idx.append(idxs)
                if v_bytes + i_bytes:
                    segments.append(Segment(payload_base + offset, v_bytes + i_bytes))
                offset += v_bytes + i_bytes
                value_bytes += v_bytes
                index_bytes += i_bytes
        else:
            # Vectorized payload construction: pick every block's (n,
            # direction), sort each lane's non-zeros to the front, and
            # slice the per-block (m, n) payloads out of one batch.
            # Bit-exact with the loop above (equivalence suite).
            flat = split_into_blocks(dense, m).reshape(-1, m, m)
            if tbs is not None:
                ns = tbs.block_n.reshape(-1).astype(np.int64)
                dir_vals = tbs.block_direction.reshape(-1).astype(np.int64)
                dir_row = dir_vals == Direction.ROW.value
            else:
                row_counts = np.count_nonzero(flat, axis=2)
                col_counts = np.count_nonzero(flat, axis=1)
                row_max = row_counts.max(axis=1)
                col_max = col_counts.max(axis=1)
                row_uniform = ((row_counts == 0) | (row_counts == row_max[:, None])).all(axis=1)
                col_uniform = ((col_counts == 0) | (col_counts == col_max[:, None])).all(axis=1)
                dir_row = row_uniform | (~col_uniform & (row_max <= col_max))
                ns = np.where(dir_row, row_max, col_max)
                dir_vals = np.where(
                    dir_row, Direction.ROW.value, Direction.COL.value
                ).astype(np.int64)

            work = np.where(dir_row[:, None, None], flat, flat.transpose(0, 2, 1))
            # Stable sort on the zero predicate moves each lane's
            # non-zeros to the front in ascending column order -- `order`
            # holds their original indices, `vals_full` their values
            # (zero in every padding slot by construction).
            order = np.argsort(work == 0, axis=-1, kind="stable")
            vals_full = np.take_along_axis(work, order, axis=-1)
            counts = np.count_nonzero(work, axis=-1)
            # Slot k >= count repeats the last non-zero's index (decode
            # idempotence); empty lanes clip to slot 0, which stable
            # argsort leaves at index 0.
            clip = np.minimum(
                np.arange(m)[None, None, :], np.maximum(counts[:, :, None] - 1, 0)
            )
            idxs_full = np.take_along_axis(order, clip, axis=-1)

            bits_per = max(1, int(math.ceil(math.log2(max(2, m)))))
            counts_total = m * ns
            v_bytes_arr = counts_total * VALUE_BYTES
            i_bytes_arr = -(-(counts_total * bits_per) // 8)
            blk_bytes = v_bytes_arr + i_bytes_arr
            offsets = np.concatenate([[0], np.cumsum(blk_bytes)[:-1]])
            value_bytes = int(v_bytes_arr.sum())
            index_bytes = int(i_bytes_arr.sum())
            for i, bidx in enumerate(block_list):
                n = int(ns[i])
                block_meta.append(
                    {
                        "n": n,
                        "direction": int(dir_vals[i]),
                        "offset": int(offsets[i]),
                        "row": bidx.row,
                        "col": bidx.col,
                    }
                )
                payload_vals.append(vals_full[i, :, :n].copy())
                payload_idx.append(idxs_full[i, :, :n].copy())
                if blk_bytes[i]:
                    segments.append(Segment(payload_base + int(offsets[i]), int(blk_bytes[i])))

        def _object_array(items: List) -> np.ndarray:
            arr = np.empty(len(items), dtype=object)
            for i, item in enumerate(items):
                arr[i] = item
            return arr

        return EncodedMatrix(
            format_name=self.name,
            shape=(rows, cols),
            nnz=int(np.count_nonzero(dense)),
            value_bytes=value_bytes,
            index_bytes=index_bytes,
            meta_bytes=info_bytes,
            segments=segments,
            arrays={
                "block_meta": _object_array(block_meta),
                "block_values": _object_array(payload_vals),
                "block_indices": _object_array(payload_idx),
                "m": np.array(m),
            },
        )

    def transposed_trace(self, encoded: EncodedMatrix) -> List[Segment]:
        """Transposed reads: Info table, then payloads in block-column order.

        Each block's payload stays one contiguous run either way -- the
        per-block direction bit means the intra-block layout is already
        defined along whichever dimension the consumer needs, so
        transposing only permutes the *inter-block* walk (block columns
        become block rows).  The direction bit changes which codec path
        expands the run, not how many bytes travel.
        """
        m = int(encoded.arrays["m"])
        metas = encoded.arrays["block_meta"]
        info_bytes = encoded.meta_bytes
        segments: List[Segment] = []
        if info_bytes:
            segments.append(Segment(0, info_bytes))
        payload_base = info_bytes
        order = sorted(range(len(metas)), key=lambda i: (metas[i]["col"], metas[i]["row"]))
        for i in order:
            meta = metas[i]
            count = m * int(meta["n"])
            nbytes = count * VALUE_BYTES + _index_bytes(count, m)
            if nbytes:
                segments.append(Segment(payload_base + int(meta["offset"]), nbytes))
        return segments

    @timed("formats.ddc.decode")
    def decode(self, encoded: EncodedMatrix) -> np.ndarray:
        rows, cols = encoded.shape
        m = int(encoded.arrays["m"])
        dense = np.zeros((rows, cols))
        metas = encoded.arrays["block_meta"]
        all_vals = encoded.arrays["block_values"]
        all_idxs = encoded.arrays["block_indices"]
        blocks = {(b.row, b.col): b for b in iter_blocks(rows, cols, m)}
        lane_ids = np.arange(m)
        for meta, vals, idxs in zip(metas, all_vals, all_idxs):
            bidx = blocks[(meta["row"], meta["col"])]
            block = np.zeros((m, m))
            # Padding slots carry value 0 with a duplicated index;
            # skipping them keeps the real value intact.
            keep = vals != 0.0
            lanes = np.broadcast_to(lane_ids[:, None], vals.shape)
            block[lanes[keep], idxs[keep]] = vals[keep]
            if Direction(meta["direction"]) is Direction.COL:
                block = block.T
            scatter_block(dense, bidx, block)
        return dense

    @staticmethod
    def compression_ratio(encoded: EncodedMatrix) -> float:
        """Dense bytes / DDC bytes."""
        rows, cols = encoded.shape
        dense_bytes = rows * cols * VALUE_BYTES
        return dense_bytes / encoded.total_bytes if encoded.total_bytes else float("inf")
