"""Memory-traffic analysis of the storage formats (Challenge-2, Fig. 7).

Given an :class:`~repro.formats.base.EncodedMatrix` this module derives
the quantities the paper uses to compare formats:

* **fetched bytes** -- the consumption-order trace, with address-adjacent
  segments coalesced (a streaming prefetch) and every remaining segment
  rounded up to the DRAM burst granularity;
* **useful bytes** -- the information-theoretic floor for moving the
  sparse operand: the non-zero values plus minimally packed position
  indices and per-block metadata;
* **bandwidth utilization** -- useful / fetched, the fraction of bus
  traffic that does real work.

The paper's headline numbers fall out of these definitions: SDC wastes
>61.54% of its traffic on alignment padding, CSR's scattered short
segments push utilization below 38.2%, and DDC recovers both losses for
an average 1.47x utilization gain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

import numpy as np

from .base import DDC_INFO_BYTES, VALUE_BYTES, EncodedMatrix, EncodeSpec, merge_contiguous

__all__ = [
    "TrafficReport",
    "traffic_report",
    "compare_formats",
    "compare_formats_both",
    "useful_bytes_floor",
]

#: Default DRAM burst (minimum transfer) granularity in bytes.
DEFAULT_BURST_BYTES = 32


@dataclass(frozen=True)
class TrafficReport:
    """Bandwidth accounting for one encoded matrix."""

    format_name: str
    useful_bytes: int
    fetched_bytes: int
    num_bursts: int
    num_segments: int
    #: Check-bit bytes travelling with protected metadata (0 when the
    #: architecture runs unprotected; see :mod:`repro.faults.ecc`).
    ecc_bytes: int = 0

    @property
    def bandwidth_utilization(self) -> float:
        if self.fetched_bytes == 0:
            return 1.0
        return min(1.0, self.useful_bytes / self.fetched_bytes)

    @property
    def redundancy_ratio(self) -> float:
        """Fraction of fetched traffic that is not useful."""
        return 1.0 - self.bandwidth_utilization


def useful_bytes_floor(encoded: EncodedMatrix, m: int = 8) -> int:
    """Minimal bytes needed to move the sparse operand.

    Non-zero FP16 values, log2(M)-bit packed position indices, and a
    16-bit per-block descriptor.  The dense format needs no indices (its
    positions are implicit), so its floor is the values alone.
    """
    if encoded.format_name == "dense":
        return encoded.nnz * VALUE_BYTES
    bits_per_index = max(1, int(math.ceil(math.log2(max(2, m)))))
    index_bytes = int(math.ceil(encoded.nnz * bits_per_index / 8.0))
    rows, cols = encoded.shape
    n_blocks = (-(-rows // m)) * (-(-cols // m))
    return encoded.nnz * VALUE_BYTES + index_bytes + n_blocks * DDC_INFO_BYTES


#: How many address-adjacent segments each format's consumer can fuse
#: into one streaming transfer.  Dense/SDC are fully streamable; DDC's
#: inter-block scheduler exploits the locality of *consecutive* blocks
#: (Sec. VI-B1), so short runs of block payloads fuse; CSR's fragments
#: land at unrelated addresses, so nothing fuses.
_MERGE_WINDOW = {
    "dense": None,
    "sdc": None,
    "ddc": 8,
    "csr": 1,
    "bitmap": None,
    # BCSR-COO payloads are back to back: the forward walk fuses into one
    # stream, and the transposed walk fuses wherever t_order happens to
    # visit address-adjacent blocks.
    "bcsrcoo": None,
}


def _merge_with_window(segments, window):
    """Coalesce address-adjacent segments, fusing at most ``window`` each."""
    if window is None:
        return merge_contiguous(segments)
    merged = []
    run = 0
    for seg in segments:
        if merged and run < window and merged[-1].end == seg.addr:
            prev = merged[-1]
            merged[-1] = type(prev)(prev.addr, prev.nbytes + seg.nbytes)
            run += 1
        else:
            merged.append(type(seg)(seg.addr, seg.nbytes))
            run = 1
    return merged


def traffic_report(
    encoded: EncodedMatrix,
    burst_bytes: int = DEFAULT_BURST_BYTES,
    m: int = 8,
    ecc=None,
    orientation: Optional[str] = None,
) -> TrafficReport:
    """Analyse one encoded matrix's consumption trace.

    ``orientation`` selects which pass's trace is analysed ('forward' |
    'transposed'); ``None`` uses the matrix's encoded orientation.  The
    transposed trace is derived from the same encoding -- nothing is
    re-encoded.

    ``ecc`` (an :class:`repro.faults.ecc.ECCConfig`) charges the
    metadata check bits as extra fetched traffic: protection is not
    free, and the protected-vs-unprotected delta is exactly what the
    fault campaigns trade against their coverage numbers.
    """
    if burst_bytes < 1:
        raise ValueError(f"burst_bytes must be positive, got {burst_bytes}")
    window = _MERGE_WINDOW.get(encoded.format_name)
    merged = _merge_with_window(encoded.trace(orientation), window)
    num_bursts = 0
    fetched = 0
    for seg in merged:
        # A segment not starting on a burst boundary drags in the head of
        # its first burst too.
        first = (seg.addr // burst_bytes) * burst_bytes
        last = seg.addr + seg.nbytes
        bursts = max(1, -(-(last - first) // burst_bytes)) if seg.nbytes else 0
        num_bursts += bursts
        fetched += bursts * burst_bytes
    useful = useful_bytes_floor(encoded, m=m)
    ecc_bytes = 0
    if ecc is not None and getattr(ecc, "enabled", False):
        from ..faults.ecc import ecc_overhead_bytes

        ecc_bytes = ecc_overhead_bytes(encoded.meta_bytes, ecc)
        if ecc_bytes:
            extra_bursts = -(-ecc_bytes // burst_bytes)
            num_bursts += extra_bursts
            fetched += extra_bursts * burst_bytes
    return TrafficReport(
        format_name=encoded.format_name,
        useful_bytes=useful,
        fetched_bytes=fetched,
        num_bursts=num_bursts,
        num_segments=len(merged),
        ecc_bytes=ecc_bytes,
    )


def _default_formats() -> list:
    """One instance of every registered format, in registry order."""
    from .registry import available_formats, get_format

    return [get_format(name) for name in available_formats()]


def compare_formats(
    values: np.ndarray,
    mask: Optional[np.ndarray] = None,
    tbs=None,
    block_size: int = 8,
    burst_bytes: int = DEFAULT_BURST_BYTES,
    formats: Optional[Iterable] = None,
    orientation: Optional[str] = None,
) -> Dict[str, TrafficReport]:
    """Encode one matrix in every format and report per-format traffic.

    This is the experiment behind Fig. 7 and the 1.47x claim: encode a
    TBS-pruned matrix in every registered format and compare bandwidth
    utilization.  ``orientation`` analyses the forward (default) or
    transposed consumption trace of the same encodings.
    """
    if formats is None:
        formats = _default_formats()
    spec = EncodeSpec(mask=mask, tbs=tbs, block_size=block_size)
    reports: Dict[str, TrafficReport] = {}
    for fmt in formats:
        encoded = fmt.encode(values, spec)
        reports[fmt.name] = traffic_report(
            encoded, burst_bytes=burst_bytes, m=block_size, orientation=orientation
        )
    return reports


def compare_formats_both(
    values: np.ndarray,
    mask: Optional[np.ndarray] = None,
    tbs=None,
    block_size: int = 8,
    burst_bytes: int = DEFAULT_BURST_BYTES,
    formats: Optional[Iterable] = None,
) -> Dict[str, Dict[str, TrafficReport]]:
    """Per-format traffic for *both* orientations from a single encode.

    Every format is encoded exactly once; the forward and transposed
    reports both analyse that one encoding (the transposed trace is
    derived, never re-encoded).  Returns
    ``{format: {orientation: TrafficReport}}``.
    """
    from .base import ORIENTATIONS

    if formats is None:
        formats = _default_formats()
    spec = EncodeSpec(mask=mask, tbs=tbs, block_size=block_size)
    reports: Dict[str, Dict[str, TrafficReport]] = {}
    for fmt in formats:
        encoded = fmt.encode(values, spec)
        reports[fmt.name] = {
            orient: traffic_report(
                encoded, burst_bytes=burst_bytes, m=block_size, orientation=orient
            )
            for orient in ORIENTATIONS
        }
    return reports
