"""The storage-format registry -- one name→format mapping for the repo.

Modeled on :mod:`repro.core.tsolvers`: formats register under their
``name`` and every consumer (the cycle simulator, the fault campaign,
``compare_formats``, the CLI's ``--format`` choices) resolves through
:func:`get_format` / :func:`available_formats` instead of keeping its own
ad-hoc name→class dict.

Registration order is load-bearing: fault-campaign RNG streams are
seeded with :func:`format_index`, so the established formats keep their
historical indices (dense, csr, sdc, ddc, bitmap) and new formats are
appended after them -- never inserted.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from .base import SparseFormat
from .bcsrcoo import BCSRCOOFormat
from .bitmap import BitmapFormat
from .csr import CSRFormat
from .ddc import DDCFormat
from .dense import DenseFormat
from .sdc import SDCFormat

__all__ = [
    "available_formats",
    "format_class",
    "format_index",
    "get_format",
    "register_format",
]

_REGISTRY: Dict[str, Type[SparseFormat]] = {}


def register_format(cls: Type[SparseFormat]) -> Type[SparseFormat]:
    """Register a :class:`SparseFormat` subclass under ``cls.name``.

    Returns ``cls`` so it can be used as a decorator.  Re-registering a
    name is an error unless it is the same class (idempotent reload).
    """
    name = cls.name
    if not name or name == "abstract":
        raise ValueError(f"format class {cls.__name__} has no usable name")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(f"format name {name!r} already registered to {existing.__name__}")
    _REGISTRY[name] = cls
    return cls


def available_formats() -> Tuple[str, ...]:
    """Registered format names, in registration (= RNG-seed) order."""
    return tuple(_REGISTRY)


def format_class(name: str) -> Type[SparseFormat]:
    """The registered class for ``name`` (raises ``ValueError`` if unknown)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown storage format {name!r}; available: {available_formats()}"
        ) from None


def get_format(name: str, **kwargs) -> SparseFormat:
    """A fresh instance of the format registered under ``name``.

    ``kwargs`` pass through to the constructor (e.g. the simulator's
    ``get_format('sdc', group_rows=m)`` hardware row-group variant).
    """
    return format_class(name)(**kwargs)


def format_index(name: str) -> int:
    """Stable index of ``name`` in registration order.

    Fault campaigns mix this into their per-trial RNG seeds, which is
    why registration order must never change for existing formats.
    """
    try:
        return list(_REGISTRY).index(name)
    except ValueError:
        raise ValueError(
            f"unknown storage format {name!r}; available: {available_formats()}"
        ) from None


# Seed registrations.  ORDER MATTERS -- see format_index(); append only.
for _cls in (DenseFormat, CSRFormat, SDCFormat, DDCFormat, BitmapFormat, BCSRCOOFormat):
    register_format(_cls)
del _cls
