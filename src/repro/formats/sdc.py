"""Single-Dimensional Compression -- aligned rows, redundant padding.

SDC (Fig. 7(a)) compresses every row to the *maximum* per-row non-zero
count so that each compressed row has the same width and its address is
directly computable.  Memory access stays perfectly regular, but the TBS
pattern's independent-dimension blocks make per-row counts uneven, so the
padding (invalid elements) averages >61.54% of the fetched bytes.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..perf import timed, use_reference_impl
from .base import (
    VALUE_BYTES,
    EncodedMatrix,
    EncodeSpec,
    Segment,
    SparseFormat,
    apply_mask,
)

#: Per-element position index: log2(M)=3 bits for M=8, stored packed
#: (0.375 byte per slot).
SDC_INDEX_BYTES = 0.375


class SDCFormat(SparseFormat):
    """Row-aligned compressed layout padded to the max row occupancy.

    ``group_rows=None`` (default) pads every row to the whole matrix's
    maximum occupancy -- the paper's Fig. 7(a) layout used for the
    bandwidth analysis.  Hardware implementations (VEGETA's row groups)
    align within groups of ``group_rows`` rows instead, trading direct
    addressability granularity for less padding; the simulator uses
    ``group_rows=M``.
    """

    name = "sdc"

    def __init__(self, group_rows: Optional[int] = None):
        if group_rows is not None and group_rows < 1:
            raise ValueError("group_rows must be positive")
        self.group_rows = group_rows

    @timed("formats.sdc.encode")
    def _encode(self, values: np.ndarray, spec: EncodeSpec) -> EncodedMatrix:
        mask, block_size = spec.mask, spec.effective_block_size
        dense = apply_mask(values, mask)
        rows, cols = dense.shape
        row_nnz = np.count_nonzero(dense, axis=1) if rows else np.zeros(0, dtype=int)
        group = self.group_rows or max(1, rows)
        # Per-row padded width: the max occupancy within the row's group.
        widths = np.zeros(rows, dtype=np.int64)
        for g0 in range(0, rows, group):
            g1 = min(rows, g0 + group)
            widths[g0:g1] = int(row_nnz[g0:g1].max()) if g1 > g0 else 0
        width = int(widths.max()) if rows and cols else 0

        if use_reference_impl():
            vals = np.zeros((rows, width))
            idxs = np.zeros((rows, width), dtype=np.int64)
            valid = np.zeros((rows, width), dtype=bool)
            for r in range(rows):
                nz = np.nonzero(dense[r])[0]
                vals[r, : nz.size] = dense[r, nz]
                idxs[r, : nz.size] = nz
                valid[r, : nz.size] = True
        else:
            # Stable sort on the zero predicate packs each row's
            # non-zeros to the front in ascending column order --
            # bit-exact with the per-row loop above.
            order = np.argsort(dense == 0.0, axis=1, kind="stable")[:, :width]
            valid = np.arange(width)[None, :] < row_nnz[:, None]
            vals = np.where(valid, np.take_along_axis(dense, order, axis=1), 0.0)
            idxs = np.where(valid, order, 0)

        nnz = int(row_nnz.sum())
        stored_slots = int(widths.sum())
        # Streaming trace: whole padded row-groups in block-row order.
        # Access is regular (directly addressable) but every padded slot
        # travels over the bus.
        segments: List[Segment] = []
        addr = 0
        for r0 in range(0, rows, block_size):
            height = min(block_size, rows - r0)
            nbytes = int(sum(widths[r0 : r0 + height]) * (VALUE_BYTES + SDC_INDEX_BYTES))
            if nbytes:
                segments.append(Segment(addr, nbytes))
            addr += nbytes

        return EncodedMatrix(
            format_name=self.name,
            shape=(rows, cols),
            nnz=nnz,
            value_bytes=stored_slots * VALUE_BYTES,
            index_bytes=int(stored_slots * SDC_INDEX_BYTES),
            meta_bytes=0,
            segments=segments,
            arrays={"values": vals, "indices": idxs, "valid": valid, "widths": widths},
        )

    def transposed_trace(self, encoded: EncodedMatrix) -> List[Segment]:
        """Transposed reads: every row-group re-fetched per block column.

        A compressed SDC row is directly addressable as a *whole*, but a
        single column's position inside it is data-dependent (it shifts
        with the row's earlier non-zeros).  Serving one transposed block
        row -- one stored block *column* -- therefore re-fetches every
        padded row-group in full, and the walk over transposed block rows
        repeats that for each block column of the stored matrix.
        """
        _, cols = encoded.shape
        bs = encoded.block_size
        n_block_cols = (cols + bs - 1) // bs
        return [seg for _ in range(n_block_cols) for seg in encoded.segments]

    @timed("formats.sdc.decode")
    def decode(self, encoded: EncodedMatrix) -> np.ndarray:
        rows, cols = encoded.shape
        dense = np.zeros((rows, cols))
        vals = encoded.arrays["values"]
        idxs = encoded.arrays["indices"]
        valid = encoded.arrays["valid"]
        row_ids = np.broadcast_to(np.arange(rows)[:, None], idxs.shape)
        dense[row_ids[valid], idxs[valid]] = vals[valid]
        return dense

    @staticmethod
    def padding_ratio(encoded: EncodedMatrix) -> float:
        """Fraction of stored value slots that are padding (redundant)."""
        stored = int(encoded.arrays["widths"].sum())
        if stored == 0:
            return 0.0
        return 1.0 - encoded.nnz / stored
