"""Trace-vs-footprint validation for encoded matrices.

An :class:`~repro.formats.base.EncodedMatrix` declares a storage
footprint (``total_bytes``) and emits access traces, but nothing
historically checked that the two agree -- a format could trace reads
past the end of its own layout, or double-charge itself by overlapping
segments, and every downstream bandwidth number would silently inherit
the error.  :func:`validate_trace` closes that gap:

* every segment must lie within ``[0, total_bytes]``;
* segments within one trace must not *partially* overlap.  Exact
  re-reads of a whole segment are legal (the SDC transposed walk
  re-fetches entire row-groups; DRAM really does re-transfer them), but
  two segments covering overlapping-yet-different ranges means the
  format's address map is inconsistent.
"""

from __future__ import annotations

from typing import List, Optional

from .base import ORIENTATIONS, EncodedMatrix

__all__ = ["TraceValidationError", "trace_violations", "validate_trace"]


class TraceValidationError(ValueError):
    """An encoded matrix's access trace contradicts its declared footprint."""


def trace_violations(
    encoded: EncodedMatrix, orientation: Optional[str] = None
) -> List[str]:
    """Violation descriptions for one orientation's trace (empty = valid)."""
    segments = encoded.trace(orientation)
    total = encoded.total_bytes
    problems: List[str] = []
    for i, seg in enumerate(segments):
        if seg.end > total:
            problems.append(
                f"segment {i} ({seg.addr}, {seg.nbytes}) ends at {seg.end}, "
                f"past the declared footprint of {total} bytes"
            )
    # Partial-overlap check: sort distinct extents by address; exact
    # duplicates collapse (whole-segment re-fetch is a legal access
    # pattern), anything else sharing bytes is a layout inconsistency.
    extents = sorted({(seg.addr, seg.end) for seg in segments if seg.nbytes})
    for (a0, a1), (b0, b1) in zip(extents, extents[1:]):
        if b0 < a1:
            problems.append(
                f"segments ({a0}, {a1 - a0}) and ({b0}, {b1 - b0}) partially overlap"
            )
    return problems


def validate_trace(
    encoded: EncodedMatrix, orientation: Optional[str] = None
) -> None:
    """Raise :class:`TraceValidationError` if a trace is inconsistent.

    With ``orientation=None`` both orientations are checked (the
    transposed trace is derived lazily, so this is also a smoke test
    that the format can serve it).
    """
    orientations = ORIENTATIONS if orientation is None else (orientation,)
    for orient in orientations:
        problems = trace_violations(encoded, orient)
        if problems:
            raise TraceValidationError(
                f"{encoded.format_name} {orient} trace is inconsistent: "
                + "; ".join(problems)
            )
