"""Bitmap-compressed storage -- the RM-STC unstructured baseline format.

Unstructured accelerators (RM-STC, SIGMA) ship the non-zero values as a
packed stream plus a 1-bit-per-position occupancy bitmap.  Both streams
are perfectly contiguous, so bandwidth utilization is decent; the price
is the fixed ``rows * cols / 8`` bytes of bitmap regardless of sparsity
and the gather hardware needed to expand it (charged in the energy
model via ``datapath_energy_scale``).
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..perf import timed
from .base import VALUE_BYTES, EncodedMatrix, EncodeSpec, Segment, SparseFormat, apply_mask


class BitmapFormat(SparseFormat):
    """Packed non-zero stream + occupancy bitmap."""

    name = "bitmap"

    @timed("formats.bitmap.encode")
    def _encode(self, values: np.ndarray, spec: EncodeSpec) -> EncodedMatrix:
        dense = apply_mask(values, spec.mask)
        rows, cols = dense.shape
        occupancy = dense != 0.0
        nz_values = dense[occupancy]
        nnz = int(nz_values.size)
        bitmap_bytes = int(math.ceil(rows * cols / 8.0)) if rows * cols else 0
        value_bytes = nnz * VALUE_BYTES
        segments = []
        if bitmap_bytes:
            segments.append(Segment(0, bitmap_bytes))
        if value_bytes:
            segments.append(Segment(bitmap_bytes, value_bytes))
        return EncodedMatrix(
            format_name=self.name,
            shape=(rows, cols),
            nnz=nnz,
            value_bytes=value_bytes,
            index_bytes=0,
            meta_bytes=bitmap_bytes,
            segments=segments,
            arrays={"bitmap": occupancy, "values": nz_values},
        )

    def transposed_trace(self, encoded: EncodedMatrix) -> List[Segment]:
        """Transposed reads: bitmap stream, then per-element value picks.

        The bitmap itself is orientation-agnostic (it streams whole
        either way), but the packed value stream is ordered by the
        *stored* row-major rank, so consuming the transpose turns it into
        one 2-byte gather per non-zero, ordered by the transposed
        block-major walk.
        """
        occupancy = encoded.arrays["bitmap"]
        bitmap_bytes = encoded.meta_bytes
        segments: List[Segment] = []
        if bitmap_bytes:
            segments.append(Segment(0, bitmap_bytes))
        r, c = np.nonzero(occupancy)
        if r.size == 0:
            return segments
        bs = encoded.block_size
        ranks = np.arange(r.size, dtype=np.int64)  # np.nonzero is row-major = pack order
        order = np.lexsort((r, c, r // bs, c // bs))
        segments.extend(
            Segment(bitmap_bytes + int(rank) * VALUE_BYTES, VALUE_BYTES) for rank in ranks[order]
        )
        return segments

    @timed("formats.bitmap.decode")
    def decode(self, encoded: EncodedMatrix) -> np.ndarray:
        rows, cols = encoded.shape
        dense = np.zeros((rows, cols))
        dense[encoded.arrays["bitmap"]] = encoded.arrays["values"]
        return dense
