"""Sparse storage formats and the adaptive codec's format conversion.

Implements the paper's Sec. V stack:

* :mod:`~repro.formats.dense` / :mod:`~repro.formats.csr` /
  :mod:`~repro.formats.sdc` -- the baseline formats whose weaknesses
  motivate DDC (Fig. 7);
* :mod:`~repro.formats.ddc` -- Dual-Dimensional Compression (Fig. 8(a));
* :mod:`~repro.formats.bcsrcoo` -- the blocked-CSR-COO hybrid that
  serves forward *and* transposed consumption from one encoding;
* :mod:`~repro.formats.conversion` -- the queue-group storage-to-
  computation conversion (Fig. 9);
* :mod:`~repro.formats.memory_model` -- the bandwidth-utilization
  analysis behind the 1.47x claim (orientation-aware);
* :mod:`~repro.formats.registry` -- the name→format registry every
  consumer resolves through;
* :mod:`~repro.formats.validate` -- trace-vs-footprint consistency
  checks.
"""

from .base import (
    DDC_INFO_BYTES,
    DEFAULT_ORIENTATION,
    ORIENTATIONS,
    VALUE_BYTES,
    EncodedMatrix,
    EncodeSpec,
    Segment,
    SparseFormat,
    apply_mask,
    merge_contiguous,
)
from .bcsrcoo import BCSRCOOFormat
from .bitmap import BitmapFormat
from .conversion import ConversionSchedule, StorageElement, block_storage_stream, convert_block
from .csr import CSRFormat
from .ddc import DDCFormat, infer_block_pattern
from .dense import DenseFormat
from .memory_model import (
    DEFAULT_BURST_BYTES,
    TrafficReport,
    compare_formats,
    compare_formats_both,
    traffic_report,
    useful_bytes_floor,
)
from .registry import (
    available_formats,
    format_class,
    format_index,
    get_format,
    register_format,
)
from .sdc import SDCFormat
from .validate import TraceValidationError, trace_violations, validate_trace

__all__ = [
    "BCSRCOOFormat",
    "BitmapFormat",
    "CSRFormat",
    "ConversionSchedule",
    "DDCFormat",
    "DDC_INFO_BYTES",
    "DEFAULT_BURST_BYTES",
    "DEFAULT_ORIENTATION",
    "DenseFormat",
    "EncodeSpec",
    "EncodedMatrix",
    "ORIENTATIONS",
    "SDCFormat",
    "Segment",
    "SparseFormat",
    "StorageElement",
    "TraceValidationError",
    "TrafficReport",
    "VALUE_BYTES",
    "apply_mask",
    "available_formats",
    "block_storage_stream",
    "compare_formats",
    "compare_formats_both",
    "convert_block",
    "format_class",
    "format_index",
    "get_format",
    "infer_block_pattern",
    "merge_contiguous",
    "register_format",
    "trace_violations",
    "traffic_report",
    "useful_bytes_floor",
    "validate_trace",
]
