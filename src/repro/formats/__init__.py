"""Sparse storage formats and the adaptive codec's format conversion.

Implements the paper's Sec. V stack:

* :mod:`~repro.formats.dense` / :mod:`~repro.formats.csr` /
  :mod:`~repro.formats.sdc` -- the baseline formats whose weaknesses
  motivate DDC (Fig. 7);
* :mod:`~repro.formats.ddc` -- Dual-Dimensional Compression (Fig. 8(a));
* :mod:`~repro.formats.conversion` -- the queue-group storage-to-
  computation conversion (Fig. 9);
* :mod:`~repro.formats.memory_model` -- the bandwidth-utilization
  analysis behind the 1.47x claim.
"""

from .bitmap import BitmapFormat
from .base import (
    DDC_INFO_BYTES,
    VALUE_BYTES,
    EncodedMatrix,
    Segment,
    SparseFormat,
    apply_mask,
    merge_contiguous,
)
from .conversion import ConversionSchedule, StorageElement, block_storage_stream, convert_block
from .csr import CSRFormat
from .ddc import DDCFormat, infer_block_pattern
from .dense import DenseFormat
from .memory_model import (
    DEFAULT_BURST_BYTES,
    TrafficReport,
    compare_formats,
    traffic_report,
    useful_bytes_floor,
)
from .sdc import SDCFormat

__all__ = [
    "BitmapFormat",
    "CSRFormat",
    "ConversionSchedule",
    "DDCFormat",
    "DDC_INFO_BYTES",
    "DEFAULT_BURST_BYTES",
    "DenseFormat",
    "EncodedMatrix",
    "SDCFormat",
    "Segment",
    "SparseFormat",
    "StorageElement",
    "TrafficReport",
    "VALUE_BYTES",
    "apply_mask",
    "block_storage_stream",
    "compare_formats",
    "convert_block",
    "infer_block_pattern",
    "merge_contiguous",
    "traffic_report",
    "useful_bytes_floor",
]
