"""Common machinery for sparse storage formats.

A format encodes a sparse matrix into a byte layout and -- crucially for
the paper's Challenge-2 -- determines the *memory access trace* the
tensor core generates while consuming the matrix in block-major
computation order.  Two properties of that trace drive bandwidth
utilization (Fig. 7):

* **redundancy** -- bytes fetched that carry no non-zero payload
  (SDC's alignment padding);
* **contiguity** -- how many separate burst transactions the trace needs
  (CSR's scattered short row segments).

Every encoder returns an :class:`EncodedMatrix` carrying the storage
footprint breakdown, the consumption-order trace as address segments, and
enough arrays to decode the matrix back exactly (used by the round-trip
tests and by the functional simulator).

Consumption **orientation** is a first-class axis: the forward pass
drains the matrix block-major, the backward pass drains the *transpose*
of the same stored bytes.  :meth:`EncodedMatrix.trace` serves either
orientation from the one encoding -- no format re-encodes for the
transposed pass; each format's :meth:`SparseFormat.transposed_trace`
derives the transposed access pattern from the stored layout alone and
pays whatever fragmentation or re-fetch cost that layout implies.
"""

from __future__ import annotations

import abc
import sys
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

#: FP16 storage, as in the paper's DVPE datapath.
VALUE_BYTES = 2
#: Column index width used by CSR (16-bit covers the evaluated layers).
CSR_INDEX_BYTES = 2
#: CSR row-pointer width.
CSR_PTR_BYTES = 4
#: DDC per-block Info-table entry: 1b dim + 3b ratio + 12b offset = 16 bits.
DDC_INFO_BYTES = 2

#: Valid consumption orientations: ``forward`` drains the stored matrix
#: block-major; ``transposed`` drains its transpose (the backward pass).
ORIENTATIONS: Tuple[str, ...] = ("forward", "transposed")
DEFAULT_ORIENTATION = "forward"


@dataclass(frozen=True)
class Segment:
    """One contiguous read in the consumption-order access trace."""

    addr: int
    nbytes: int

    def __post_init__(self) -> None:
        if self.addr < 0 or self.nbytes < 0:
            raise ValueError(f"invalid segment ({self.addr}, {self.nbytes})")

    @property
    def end(self) -> int:
        return self.addr + self.nbytes


@dataclass(frozen=True, eq=False)
class EncodeSpec:
    """Every non-``values`` knob of one :meth:`SparseFormat.encode` call.

    Replaces the old ``encode(values, mask=None, tbs=None, block_size=8)``
    kwarg tail with one immutable value object, mirroring the
    ``SimOptions`` migration: pass ``EncodeSpec(...)`` as the second
    argument; the legacy kwargs still work through a shim that warns once
    per call-site.

    ``orientation`` records the *primary* consumption orientation the
    encoding will be traced in; either orientation can still be requested
    later via :meth:`EncodedMatrix.trace`.
    """

    #: Boolean keep-mask applied to ``values`` (None = values are final).
    mask: Optional[np.ndarray] = None
    #: :class:`~repro.core.sparsify.TBSResult` when the matrix carries TBS
    #: metadata -- required by DDC, ignored by the baseline formats.
    tbs: object = None
    #: Block granularity of the consumption trace (the PE array's M).
    block_size: int = 8
    #: Primary consumption orientation ('forward' | 'transposed').
    orientation: str = DEFAULT_ORIENTATION

    def __post_init__(self) -> None:
        if self.block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {self.block_size}")
        if self.orientation not in ORIENTATIONS:
            raise ValueError(
                f"orientation must be one of {ORIENTATIONS}, got {self.orientation!r}"
            )

    @property
    def effective_block_size(self) -> int:
        """Trace granularity: the TBS block edge when TBS metadata exists."""
        m = getattr(self.tbs, "m", None)
        return int(m) if m else self.block_size


@dataclass
class EncodedMatrix:
    """A sparse matrix in one storage format.

    Attributes
    ----------
    format_name:
        Short identifier ("dense", "csr", "sdc", "ddc", "bitmap",
        "bcsrcoo").
    shape:
        Logical (rows, cols) of the original matrix.
    nnz:
        Non-zero count.
    value_bytes / index_bytes / meta_bytes:
        Storage footprint breakdown.
    segments:
        Forward (block-major) consumption-order access trace, matching
        how the PE array drains the matrix.  Use :meth:`trace` to obtain
        the trace for either orientation.
    arrays:
        Format-specific payload arrays, sufficient for exact decode.
    orientation:
        The primary orientation this matrix was encoded for (from the
        :class:`EncodeSpec`); :meth:`trace` defaults to it.
    block_size:
        Trace block granularity the encoder used.
    """

    format_name: str
    shape: Tuple[int, int]
    nnz: int
    value_bytes: int
    index_bytes: int
    meta_bytes: int
    segments: List[Segment] = field(default_factory=list)
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    orientation: str = DEFAULT_ORIENTATION
    block_size: int = 8
    #: Lazily-built transposed-orientation trace (cached; derived from the
    #: stored layout by the owning format -- never by re-encoding).
    transposed_segments: Optional[List[Segment]] = None

    @property
    def total_bytes(self) -> int:
        return self.value_bytes + self.index_bytes + self.meta_bytes

    @property
    def payload_bytes(self) -> int:
        """Bytes that carry actual non-zero values (the useful traffic)."""
        return self.nnz * VALUE_BYTES

    @property
    def traced_bytes(self) -> int:
        """Total bytes of the forward consumption trace."""
        return sum(seg.nbytes for seg in self.segments)

    def trace(self, orientation: Optional[str] = None) -> List[Segment]:
        """Access trace for ``orientation`` (default: the encoded one).

        The transposed trace is derived once from the stored layout via
        the registered format's :meth:`SparseFormat.transposed_trace` and
        cached -- requesting it never re-encodes the matrix.
        """
        if orientation is None:
            orientation = self.orientation
        if orientation not in ORIENTATIONS:
            raise ValueError(
                f"orientation must be one of {ORIENTATIONS}, got {orientation!r}"
            )
        if orientation == "forward":
            return self.segments
        if self.transposed_segments is None:
            from .registry import get_format

            self.transposed_segments = get_format(self.format_name).transposed_trace(self)
        return self.transposed_segments

    def traced_bytes_for(self, orientation: Optional[str] = None) -> int:
        """Total bytes of the trace for ``orientation``."""
        return sum(seg.nbytes for seg in self.trace(orientation))


#: Call-sites (file, line) that already received the legacy-kwargs warning.
_LEGACY_ENCODE_WARNED_SITES: Set[Tuple[str, int]] = set()
_LEGACY_ENCODE_KWARGS = ("mask", "tbs", "block_size")


class SparseFormat(abc.ABC):
    """Interface implemented by every storage format.

    Subclasses implement :meth:`_encode` (and may override
    :meth:`transposed_trace` / :meth:`decode_transposed`); callers use
    the public :meth:`encode`, which accepts an :class:`EncodeSpec`.
    """

    name: str = "abstract"

    def encode(
        self,
        values: np.ndarray,
        spec: Optional[EncodeSpec] = None,
        **legacy,
    ) -> EncodedMatrix:
        """Encode ``values`` per ``spec`` (an :class:`EncodeSpec`).

        Zeros are either already applied to ``values`` or given via
        ``spec.mask``.  The legacy ``encode(values, mask=..., tbs=...,
        block_size=...)`` spelling still works through a deprecation shim
        that warns once per call-site.
        """
        if legacy or (spec is not None and not isinstance(spec, EncodeSpec)):
            spec = self._coerce_legacy(spec, legacy)
        elif spec is None:
            spec = EncodeSpec()
        encoded = self._encode(values, spec)
        encoded.orientation = spec.orientation
        encoded.block_size = spec.effective_block_size
        return encoded

    @staticmethod
    def _coerce_legacy(mask_positional, legacy) -> EncodeSpec:
        for key in legacy:
            if key not in _LEGACY_ENCODE_KWARGS:
                raise TypeError(f"encode() got an unexpected keyword argument {key!r}")
        if mask_positional is not None:
            if "mask" in legacy:
                raise TypeError("encode() got multiple values for argument 'mask'")
            legacy = dict(legacy, mask=mask_positional)
        caller = sys._getframe(2)
        site = (caller.f_code.co_filename, caller.f_lineno)
        if site not in _LEGACY_ENCODE_WARNED_SITES:
            _LEGACY_ENCODE_WARNED_SITES.add(site)
            warnings.warn(
                "passing mask/tbs/block_size keywords to SparseFormat.encode() is "
                "deprecated; pass an EncodeSpec instead: "
                "fmt.encode(values, EncodeSpec(mask=..., tbs=..., block_size=...))",
                DeprecationWarning,
                stacklevel=3,
            )
        return EncodeSpec(**legacy)

    @abc.abstractmethod
    def _encode(self, values: np.ndarray, spec: EncodeSpec) -> EncodedMatrix:
        """Format-specific encode; ``spec`` is always a full EncodeSpec."""

    @abc.abstractmethod
    def decode(self, encoded: EncodedMatrix) -> np.ndarray:
        """Exact inverse of :meth:`encode`."""

    def decode_transposed(self, encoded: EncodedMatrix) -> np.ndarray:
        """Decode the matrix as consumed in the transposed orientation.

        Defaults to ``decode(encoded).T``; formats with a native
        transpose path (BCSR-COO's COO index walk) override it.
        """
        return self.decode(encoded).T

    def transposed_trace(self, encoded: EncodedMatrix) -> List[Segment]:
        """Transposed-orientation access trace, derived from ``encoded``.

        Implementations must read only ``encoded`` (its arrays, footprint
        and forward trace) -- never re-encode -- so any
        :class:`EncodedMatrix` of this format, however obtained, can be
        traced in either orientation.
        """
        raise NotImplementedError(
            f"format {self.name!r} does not implement a transposed trace"
        )


def apply_mask(values: np.ndarray, mask: Optional[np.ndarray]) -> np.ndarray:
    """Materialise the sparse matrix ``values * mask`` as float64."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {values.shape}")
    if mask is None:
        return values
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != values.shape:
        raise ValueError(f"mask shape {mask.shape} != values shape {values.shape}")
    return np.where(mask, values, 0.0)


def merge_contiguous(segments: List[Segment]) -> List[Segment]:
    """Coalesce address-adjacent segments (a streaming prefetcher's view)."""
    merged: List[Segment] = []
    for seg in segments:
        if merged and merged[-1].end == seg.addr:
            merged[-1] = Segment(merged[-1].addr, merged[-1].nbytes + seg.nbytes)
        else:
            merged.append(Segment(seg.addr, seg.nbytes))
    return merged
