"""Common machinery for sparse storage formats.

A format encodes a sparse matrix into a byte layout and -- crucially for
the paper's Challenge-2 -- determines the *memory access trace* the
tensor core generates while consuming the matrix in block-major
computation order.  Two properties of that trace drive bandwidth
utilization (Fig. 7):

* **redundancy** -- bytes fetched that carry no non-zero payload
  (SDC's alignment padding);
* **contiguity** -- how many separate burst transactions the trace needs
  (CSR's scattered short row segments).

Every encoder returns an :class:`EncodedMatrix` carrying the storage
footprint breakdown, the consumption-order trace as address segments, and
enough arrays to decode the matrix back exactly (used by the round-trip
tests and by the functional simulator).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

#: FP16 storage, as in the paper's DVPE datapath.
VALUE_BYTES = 2
#: Column index width used by CSR (16-bit covers the evaluated layers).
CSR_INDEX_BYTES = 2
#: CSR row-pointer width.
CSR_PTR_BYTES = 4
#: DDC per-block Info-table entry: 1b dim + 3b ratio + 12b offset = 16 bits.
DDC_INFO_BYTES = 2


@dataclass(frozen=True)
class Segment:
    """One contiguous read in the consumption-order access trace."""

    addr: int
    nbytes: int

    def __post_init__(self) -> None:
        if self.addr < 0 or self.nbytes < 0:
            raise ValueError(f"invalid segment ({self.addr}, {self.nbytes})")

    @property
    def end(self) -> int:
        return self.addr + self.nbytes


@dataclass
class EncodedMatrix:
    """A sparse matrix in one storage format.

    Attributes
    ----------
    format_name:
        Short identifier ("dense", "csr", "sdc", "ddc").
    shape:
        Logical (rows, cols) of the original matrix.
    nnz:
        Non-zero count.
    value_bytes / index_bytes / meta_bytes:
        Storage footprint breakdown.
    segments:
        Consumption-order access trace (block-major, matching how the PE
        array drains the matrix).
    arrays:
        Format-specific payload arrays, sufficient for exact decode.
    """

    format_name: str
    shape: Tuple[int, int]
    nnz: int
    value_bytes: int
    index_bytes: int
    meta_bytes: int
    segments: List[Segment] = field(default_factory=list)
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return self.value_bytes + self.index_bytes + self.meta_bytes

    @property
    def payload_bytes(self) -> int:
        """Bytes that carry actual non-zero values (the useful traffic)."""
        return self.nnz * VALUE_BYTES

    @property
    def traced_bytes(self) -> int:
        return sum(seg.nbytes for seg in self.segments)


class SparseFormat(abc.ABC):
    """Interface implemented by every storage format."""

    name: str = "abstract"

    @abc.abstractmethod
    def encode(
        self,
        values: np.ndarray,
        mask: Optional[np.ndarray] = None,
        tbs=None,
        block_size: int = 8,
    ) -> EncodedMatrix:
        """Encode ``values`` (zeros already applied or given via ``mask``).

        ``tbs`` is the :class:`~repro.core.sparsify.TBSResult` when the
        matrix carries TBS metadata -- required by DDC, ignored by the
        baseline formats.
        """

    @abc.abstractmethod
    def decode(self, encoded: EncodedMatrix) -> np.ndarray:
        """Exact inverse of :meth:`encode`."""


def apply_mask(values: np.ndarray, mask: Optional[np.ndarray]) -> np.ndarray:
    """Materialise the sparse matrix ``values * mask`` as float64."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {values.shape}")
    if mask is None:
        return values
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != values.shape:
        raise ValueError(f"mask shape {mask.shape} != values shape {values.shape}")
    return np.where(mask, values, 0.0)


def merge_contiguous(segments: List[Segment]) -> List[Segment]:
    """Coalesce address-adjacent segments (a streaming prefetcher's view)."""
    merged: List[Segment] = []
    for seg in segments:
        if merged and merged[-1].end == seg.addr:
            merged[-1] = Segment(merged[-1].addr, merged[-1].nbytes + seg.nbytes)
        else:
            merged.append(Segment(seg.addr, seg.nbytes))
    return merged
