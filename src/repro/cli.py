"""Command-line interface: ``python -m repro <command> ...``.

Three commands:

* ``report`` -- run one (or all) of the paper's experiments and print
  its table(s); experiment names follow the paper (``table1`` ...
  ``fig18``).
* ``prune`` -- prune a ``.npy`` weight matrix with any pattern family
  and write the boolean mask next to it.
* ``simulate`` -- simulate one GEMM layer on a chosen architecture.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]

#: experiment name -> (driver factory, printer); resolved lazily so the
#: CLI imports fast.
_EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "fig1",
    "fig4",
    "fig6",
    "fig7",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="TB-STC (HPCA 2025) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="run a paper experiment and print its table")
    report.add_argument("experiment", choices=_EXPERIMENTS + ("all",))
    report.add_argument("--seeds", type=int, default=1, help="number of seeds for accuracy runs")
    report.add_argument("--epochs", type=int, default=8, help="training epochs for accuracy runs")
    report.add_argument("--scale", type=int, default=4, help="layer down-scaling for simulator runs")

    prune = sub.add_parser("prune", help="prune a .npy weight matrix")
    prune.add_argument("weights", help="path to a 2-D .npy array")
    prune.add_argument("--pattern", default="TBS", choices=["US", "TS", "RS_V", "RS_H", "TBS"])
    prune.add_argument("--sparsity", type=float, default=0.5)
    prune.add_argument("--m", type=int, default=8)
    prune.add_argument("--out", default=None, help="output mask path (default: <weights>.mask.npy)")

    sim = sub.add_parser("simulate", help="simulate one sparse GEMM")
    sim.add_argument("--rows", type=int, required=True)
    sim.add_argument("--cols", type=int, required=True)
    sim.add_argument("--b-cols", type=int, required=True)
    sim.add_argument("--sparsity", type=float, default=0.75)
    sim.add_argument("--arch", default="TB-STC")
    sim.add_argument("--seed", type=int, default=0)
    return parser


def _run_report(args) -> int:
    from .analysis import (
        render_dict_table,
        render_table,
        run_fig1_pareto,
        run_fig4_maskspace,
        run_fig6_datapath_power,
        run_fig7_bandwidth,
        run_fig12_layerwise,
        run_fig13_end2end,
        run_fig14_breakdown,
        run_fig15_bandwidth,
        run_fig15_block_size,
        run_fig15_quantization,
        run_fig15_sparsity_sweep,
        run_fig16_codec_ablation,
        run_fig16_scheduling_ablation,
        run_fig17_distribution,
        run_fig18_convergence,
        run_table1,
        run_table2,
        run_table3,
    )

    seeds = tuple(range(args.seeds))

    def show(experiment: str) -> None:
        print(f"\n--- {experiment} ---")
        if experiment == "table1":
            print(render_dict_table(run_table1(seeds=seeds, epochs=args.epochs), key_header="proxy"))
        elif experiment == "table2":
            print(render_dict_table(run_table2(seeds=seeds, epochs=args.epochs), key_header="proxy/criterion"))
        elif experiment == "table3":
            res = run_table3()
            print(render_dict_table(
                {"area_mm2": res["area_mm2"], "power_mw": res["power_mw"]}, key_header="metric"
            ))
        elif experiment == "fig1":
            res = run_fig1_pareto(seeds=seeds, epochs=args.epochs, scale=args.scale)
            print(render_table(
                ["design", "EDP", "accuracy"],
                [[p.label, f"{p.cost:.3e}", f"{p.quality:.3f}"] for p in res["points"]],
            ))
            print("frontier:", [p.label for p in res["frontier"]])
        elif experiment == "fig4":
            res = run_fig4_maskspace()
            print(render_dict_table(
                {"similarity_vs_US": res["similarity"], "log2_maskspace": res["log2_maskspace"]},
                key_header="metric",
            ))
        elif experiment == "fig6":
            print(run_fig6_datapath_power())
        elif experiment == "fig7":
            print(render_dict_table(run_fig7_bandwidth(), key_header="workload"))
        elif experiment == "fig12":
            for layer, table in run_fig12_layerwise(scale=args.scale).items():
                print(render_dict_table(table, key_header=layer))
        elif experiment == "fig13":
            for model, table in run_fig13_end2end(scale=max(args.scale, 8)).items():
                print(render_dict_table(table, key_header=model))
        elif experiment == "fig14":
            print(render_dict_table(run_fig14_breakdown(scale=args.scale), key_header="layer"))
        elif experiment == "fig15":
            print(render_dict_table(
                {f"M={m}": row for m, row in run_fig15_block_size(scale=args.scale, epochs=args.epochs).items()},
                key_header="block",
            ))
            print("quantization:", run_fig15_quantization(epochs=args.epochs, scale=args.scale))
            print("bandwidth:", run_fig15_bandwidth(scale=args.scale))
            print(render_dict_table(
                {f"{s:.0%}": row for s, row in run_fig15_sparsity_sweep(scale=args.scale).items()},
                key_header="sparsity",
            ))
        elif experiment == "fig16":
            print("codec:", run_fig16_codec_ablation(scale=args.scale))
            print(render_dict_table(run_fig16_scheduling_ablation(scale=args.scale), key_header="metric"))
        elif experiment == "fig17":
            print(render_dict_table(run_fig17_distribution(), key_header="layers"))
        elif experiment == "fig18":
            for name, series in run_fig18_convergence(epochs=args.epochs).items():
                print(name, [round(v, 3) for v in series])
        else:  # pragma: no cover - choices restrict this
            raise ValueError(experiment)

    if args.experiment == "all":
        for experiment in _EXPERIMENTS:
            show(experiment)
    else:
        show(args.experiment)
    return 0


def _run_prune(args) -> int:
    from .core.masks import make_mask
    from .core.patterns import PatternFamily, PatternSpec
    from .core.sparsify import tbs_sparsify

    weights = np.load(args.weights)
    if weights.ndim != 2:
        print(f"error: expected a 2-D array, got shape {weights.shape}", file=sys.stderr)
        return 2
    family = PatternFamily[args.pattern]
    if family is PatternFamily.TBS:
        result = tbs_sparsify(weights, m=args.m, sparsity=args.sparsity)
        mask = result.mask
        extra = f", directions {result.direction_histogram()}"
    else:
        mask = make_mask(weights, PatternSpec(family, m=args.m, sparsity=args.sparsity))
        extra = ""
    out = args.out or args.weights.replace(".npy", "") + ".mask.npy"
    np.save(out, mask)
    print(f"{args.pattern} mask: sparsity {1 - mask.mean():.1%}{extra} -> {out}")
    return 0


def _run_simulate(args) -> int:
    from .core.patterns import PatternFamily
    from .sim.baselines import ARCH_FAMILY, arch_by_name, simulate_arch
    from .workloads.generator import build_workload
    from .workloads.layers import LayerSpec

    try:
        config = arch_by_name(args.arch)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    family = ARCH_FAMILY.get(args.arch, PatternFamily.TBS)
    layer = LayerSpec("cli", args.rows, args.cols, args.b_cols)
    workload = build_workload(layer, family, args.sparsity, seed=args.seed)
    result = simulate_arch(config, workload)
    print(f"{args.arch} on {args.rows}x{args.cols} @ K={args.b_cols}, "
          f"{family.name} {workload.sparsity:.1%} sparse:")
    print(f"  cycles        {result.cycles}")
    print(f"  energy        {result.energy.total_j * 1e6:.3f} uJ")
    print(f"  EDP           {result.edp:.4e} J*s")
    print(f"  compute util  {result.compute_utilization:.1%}")
    print(f"  bandwidth util {result.bandwidth_utilization:.1%}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "report":
        return _run_report(args)
    if args.command == "prune":
        return _run_prune(args)
    if args.command == "simulate":
        return _run_simulate(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
