"""Command-line interface: ``python -m repro <command> ...``.

Eight commands:

* ``report`` -- run one (or all) of the paper's experiments and print
  its table(s); experiment names follow the paper (``table1`` ...
  ``fig18``).  Experiments run through the fault-tolerant runner
  (:mod:`repro.runtime.runner`): a crash in one figure no longer kills
  the sweep, and with ``--checkpoint-dir``/``--resume`` completed cells
  are cached on disk and replayed instead of recomputed.  ``--workers N``
  shards the grid-shaped experiments inside each figure across a
  process pool (:mod:`repro.sweep`) without changing the numbers.
* ``sweep`` -- run one experiment directly through the parallel sweep
  engine with per-cell progress, ``--workers N`` sharding, and a
  ``--cache-dir``/``--resume`` cell cache; ``--json`` prints the raw
  aggregated data instead of the rendered table.
* ``prune`` -- prune a ``.npy`` weight matrix with any pattern family
  and write the boolean mask next to it.
* ``simulate`` -- simulate one GEMM layer on a chosen architecture;
  ``--json`` emits the versioned :meth:`SimResult.to_dict` payload.
* ``faults`` -- run a seeded Monte-Carlo fault-injection campaign
  (:mod:`repro.faults`) over storage formats x fault models and print
  the per-cell SDC-rate / detection-coverage table.  ``--ecc parity``
  or ``--ecc secded`` protects format metadata and also prints the
  protection's storage and energy overhead on a reference layer;
  ``--workers N`` shards the campaign cells.
* ``perf`` -- run the deterministic benchmark suite
  (:mod:`repro.perf.bench`) and write ``BENCH_<name>.json``;
  ``--compare BENCH_baseline.json`` turns it into a regression gate
  (exit 1 when any bench exceeds the baseline by ``--tolerance``).
* ``trace`` -- run one experiment with observability on
  (:mod:`repro.obs`) and write a Chrome ``trace_event`` JSON viewable
  in Perfetto (``--out trace.json``); ``--metrics`` additionally dumps
  the merged deterministic metrics.
* ``serve`` -- run the durable simulation service (:mod:`repro.service`):
  an HTTP job server with idempotent submission, crash recovery from a
  SQLite run store, per-client rate limiting with 429 + ``Retry-After``
  load shedding, and graceful SIGTERM drain that re-queues in-flight
  jobs as resumable.

``sweep`` and ``faults`` exit **1** when any cell ends ``failed``,
``crashed`` or ``timeout`` (usage errors exit 2); ``--allow-partial``
downgrades cell failures to a stderr warning, prints the partial data,
and exits 0.

``--metrics PATH`` (report/sweep/faults/trace) enables the
observability layer for the run and writes its merged
counter/gauge/histogram registry -- deterministic and byte-identical at
any ``--workers N`` -- to ``PATH`` as JSON.

``--executor {auto,serial,supervised}``, ``--timeout S`` and
``--retries N`` (report/sweep/faults/perf/trace) select the sweep
execution backend (:mod:`repro.sweep.executors`): the supervised
executor runs one process per in-flight cell, classifies worker death
as ``crashed`` and deadline overruns as ``timeout``, and retries
exactly those transient outcomes up to N extra attempts with
deterministic backoff.  Deterministic failures (a cell that raises) are
never retried, and retried results are byte-identical to a clean serial
run.

``--checks {off,warn,strict}`` (all commands) selects the runtime
invariant level (:mod:`repro.runtime.checks`); under ``strict``,
invalid masks or storage-format round-trip failures abort instead of
propagating silently.  ``--strict-checks`` survives as a hidden alias
for ``--checks strict``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]

#: Experiment names, duplicated from ``repro.analysis.experiments
#: .EXPERIMENTS`` so building the parser never imports the (heavy)
#: analysis stack; ``tests/test_cli.py`` asserts the two stay in sync.
_EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "fig1",
    "fig4",
    "fig6",
    "fig7",
    "fig7both",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "wide",
    "scenarios",
)

#: Scenario workload families, duplicated from ``repro.workloads
#: .scenarios.SCENARIO_FAMILIES`` for the same lazy-import reason (the
#: sync is asserted in ``tests/test_cli.py``).  ``--families`` choices
#: are NOT restricted at parse time: the driver's own one-line error
#: (exit 1) covers typos, and keeps report/sweep behaviour identical.
_SCENARIO_FAMILIES = ("stencil", "moe", "inference24")

#: Transposable-mask solver backends, duplicated from
#: ``repro.core.tsolvers.TSOLVER_NAMES`` for the same lazy-import reason.
_TSOLVERS = ("greedy", "exact", "tsenor")

#: Storage formats, duplicated from ``repro.formats.registry
#: .available_formats()`` for the same lazy-import reason (the sync is
#: asserted in ``tests/test_cli.py``).
_FORMAT_NAMES = ("dense", "csr", "sdc", "ddc", "bitmap", "bcsrcoo")

#: Consumption orientations, duplicated from ``repro.formats.base
#: .ORIENTATIONS`` (same lazy-import reason, same sync test).
_ORIENTATIONS = ("forward", "transposed")


def _add_checks_flags(cmd: argparse.ArgumentParser, help_text: str, default=None) -> None:
    """The canonical ``--checks {off,warn,strict}`` flag plus the hidden
    legacy ``--strict-checks`` alias (same dest, pinned to ``strict``)."""
    cmd.add_argument(
        "--checks", default=default, choices=["off", "warn", "strict"], help=help_text
    )
    cmd.add_argument(
        "--strict-checks", action="store_const", const="strict", dest="checks",
        help=argparse.SUPPRESS,
    )


def _add_workers_flag(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for sweep sharding "
        "(default: $REPRO_SWEEP_WORKERS or 1; results are identical at any N)",
    )


def _add_supervision_flags(cmd: argparse.ArgumentParser, retries: bool = True) -> None:
    """``--executor``/``--timeout`` (plus ``--retries`` unless the command
    already defines its own) for the sweep supervision layer."""
    cmd.add_argument(
        "--executor", default=None, choices=["auto", "serial", "supervised"],
        help="sweep execution backend: 'serial' runs cells inline, "
        "'supervised' runs one process per in-flight cell (worker death -> "
        "crashed, deadline overrun -> timeout); 'auto' (default) picks "
        "serial at --workers 1 and supervised otherwise",
    )
    cmd.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-cell deadline in seconds; an overrunning worker is killed "
        "and the cell classified 'timeout' (supervised executor only)",
    )
    if retries:
        cmd.add_argument(
            "--retries", type=int, default=0,
            help="extra attempts per sweep cell after a transient "
            "crashed/timeout outcome (deterministic failures are never "
            "retried; default: 0)",
        )


def _add_metrics_flag(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="enable the observability layer and write its merged "
        "deterministic metrics (counters/gauges/histograms) to PATH as "
        "JSON; byte-identical at any --workers N",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="TB-STC (HPCA 2025) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="run a paper experiment and print its table")
    report.add_argument("experiment", choices=_EXPERIMENTS + ("all",))
    report.add_argument("--seeds", type=int, default=1, help="number of seeds for accuracy runs")
    report.add_argument("--epochs", type=int, default=8, help="training epochs for accuracy runs")
    report.add_argument("--scale", type=int, default=4, help="layer down-scaling for simulator runs")
    _add_workers_flag(report)
    report.add_argument(
        "--checkpoint-dir", default=None,
        help="cache completed experiment cells here (enables crash recovery)",
    )
    report.add_argument(
        "--resume", action="store_true",
        help="serve cells already cached in --checkpoint-dir instead of recomputing",
    )
    report.add_argument(
        "--retries", type=int, default=1,
        help="extra attempts per experiment cell before it is declared "
        "failed; also the per-sweep-cell retry budget for transient "
        "crashed/timeout outcomes under the supervised executor",
    )
    report.add_argument(
        "--families", nargs="+", default=None, metavar="FAMILY",
        help="workload families for the 'scenarios' experiment "
        f"(default: all: {', '.join(_SCENARIO_FAMILIES)}; other "
        "experiments ignore it)",
    )
    report.add_argument(
        "--json", action="store_true",
        help="print the raw experiment data as JSON instead of the rendered tables",
    )
    _add_supervision_flags(report, retries=False)
    _add_metrics_flag(report)
    _add_checks_flags(report, "runtime invariant level for mask/format checking")

    sweep = sub.add_parser(
        "sweep", help="run one experiment through the parallel sweep engine"
    )
    sweep.add_argument("experiment", choices=_EXPERIMENTS)
    sweep.add_argument("--seeds", type=int, default=1, help="number of seeds for accuracy runs")
    sweep.add_argument("--epochs", type=int, default=8, help="training epochs for accuracy runs")
    sweep.add_argument("--scale", type=int, default=4, help="layer down-scaling for simulator runs")
    _add_workers_flag(sweep)
    sweep.add_argument(
        "--cache-dir", default=None,
        help="content-addressed cell cache directory (enables --resume)",
    )
    sweep.add_argument(
        "--resume", action="store_true",
        help="serve cells already cached in --cache-dir instead of recomputing",
    )
    sweep.add_argument(
        "--json", action="store_true",
        help="print the raw aggregated data as JSON instead of the rendered table",
    )
    sweep.add_argument(
        "--families", nargs="+", default=None, metavar="FAMILY",
        help="workload families for the 'scenarios' experiment "
        f"(default: all: {', '.join(_SCENARIO_FAMILIES)}; other "
        "experiments ignore it)",
    )
    sweep.add_argument(
        "--allow-partial", action="store_true",
        help="exit 0 even when cells fail: warn on stderr, print the "
        "settled cells' raw values as JSON (default: cell failures exit 1)",
    )
    _add_supervision_flags(sweep)
    _add_metrics_flag(sweep)
    _add_checks_flags(sweep, "runtime invariant level for mask/format checking")

    prune = sub.add_parser("prune", help="prune a .npy weight matrix")
    prune.add_argument("weights", help="path to a 2-D .npy array")
    prune.add_argument(
        "--pattern", default="TBS", choices=["US", "TS", "RS_V", "RS_H", "TBS", "NMT"]
    )
    prune.add_argument("--sparsity", type=float, default=0.5)
    prune.add_argument("--m", type=int, default=8)
    prune.add_argument(
        "--tsolver", default=None, choices=list(_TSOLVERS),
        help="transposable-mask solver backend for --pattern NMT "
        "(default: $REPRO_TSOLVER or greedy; other patterns ignore it)",
    )
    prune.add_argument("--out", default=None, help="output mask path (default: <weights>.mask.npy)")
    _add_checks_flags(prune, "validate the generated mask against its pattern family")

    sim = sub.add_parser("simulate", help="simulate one sparse GEMM")
    sim.add_argument("--rows", type=int, required=True)
    sim.add_argument("--cols", type=int, required=True)
    sim.add_argument("--b-cols", type=int, required=True)
    sim.add_argument("--sparsity", type=float, default=0.75)
    sim.add_argument("--arch", default="TB-STC")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument(
        "--tsolver", default=None, choices=list(_TSOLVERS),
        help="transposable-mask solver backend used if the workload's "
        "masks are built with the NMT family (default: $REPRO_TSOLVER "
        "or greedy)",
    )
    sim.add_argument(
        "--weight-bits", type=int, default=16,
        help="weight precision in bits (8 halves weight traffic; default: 16)",
    )
    sim.add_argument(
        "--orientation", default="forward", choices=list(_ORIENTATIONS),
        help="consumption orientation of the A operand: 'transposed' "
        "models the backward pass draining the transpose of the same "
        "stored encoding (default: forward)",
    )
    sim.add_argument(
        "--fault", default=None, choices=["values", "indices", "metadata"],
        help="inject one storage-side bitflip into this payload before decode",
    )
    sim.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the injected fault's position (default: 0)",
    )
    sim.add_argument(
        "--json", action="store_true",
        help="emit the versioned SimResult.to_dict() payload as JSON",
    )
    _add_checks_flags(sim, "validate the workload mask and storage-format round-trip")

    faults = sub.add_parser("faults", help="run a seeded fault-injection campaign")
    faults.add_argument("--seed", type=int, default=0, help="campaign master seed")
    faults.add_argument("--trials", type=int, default=30, help="injections per (format, model) cell")
    faults.add_argument(
        "--formats", nargs="+", default=None, metavar="FMT",
        choices=list(_FORMAT_NAMES),
        help=f"storage formats to stress (default: all registered: "
        f"{', '.join(_FORMAT_NAMES)})",
    )
    faults.add_argument(
        "--models", nargs="+", default=None, metavar="MODEL",
        help="fault models to sweep (default: all)",
    )
    faults.add_argument(
        "--ecc", default="none", choices=["none", "parity", "secded"],
        help="metadata protection to model (default: none)",
    )
    faults.add_argument("--rows", type=int, default=32)
    faults.add_argument("--cols", type=int, default=32)
    faults.add_argument("--m", type=int, default=8, help="block size M")
    faults.add_argument("--sparsity", type=float, default=0.75)
    _add_checks_flags(
        faults,
        "runtime invariant level the classification runs under (default: warn)",
        default="warn",
    )
    _add_workers_flag(faults)
    faults.add_argument(
        "--checkpoint-dir", default=None,
        help="cache completed campaign cells here (enables crash recovery)",
    )
    faults.add_argument(
        "--resume", action="store_true",
        help="serve cells already cached in --checkpoint-dir instead of recomputing",
    )
    faults.add_argument(
        "--retries", type=int, default=0,
        help="extra attempts per campaign cell after a transient "
        "crashed/timeout outcome under the supervised executor "
        "(deterministic classification failures are never retried; "
        "default: 0)",
    )
    faults.add_argument(
        "--json", action="store_true",
        help="emit the campaign spec and per-cell counts as JSON",
    )
    faults.add_argument(
        "--allow-partial", action="store_true",
        help="exit 0 even when campaign cells fail: warn on stderr and "
        "print the table over the cells that settled (default: cell "
        "failures exit 1)",
    )
    _add_supervision_flags(faults, retries=False)
    _add_metrics_flag(faults)

    perf = sub.add_parser("perf", help="run the benchmark suite / regression gate")
    perf.add_argument(
        "--profile", default="full", choices=["smoke", "quick", "full"],
        help="bench sizes (default: full)",
    )
    perf.add_argument(
        "--quick", action="store_true",
        help="shorthand for --profile quick (the CI gate profile)",
    )
    perf.add_argument("--name", default="baseline", help="suffix for BENCH_<name>.json")
    perf.add_argument("--out-dir", default=".", help="directory for the BENCH json")
    perf.add_argument("--seed", type=int, default=0)
    _add_workers_flag(perf)
    perf.add_argument(
        "--compare", default=None, metavar="BASELINE_JSON",
        help="compare against this baseline and fail on regression",
    )
    perf.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed normalized slowdown vs baseline (default: 0.25 = +25%%)",
    )
    perf.add_argument(
        "--trajectory", default=None, metavar="JSONL",
        help="append a summary line to this bench-trajectory file",
    )
    perf.add_argument(
        "--best-of", type=int, default=1, metavar="N",
        help="run the suite N times and keep the per-bench best "
        "(use for committed baselines; default: 1)",
    )
    _add_supervision_flags(perf)

    trace = sub.add_parser(
        "trace", help="run one experiment with tracing on and write a Chrome trace"
    )
    trace.add_argument("experiment", choices=_EXPERIMENTS)
    trace.add_argument("--seeds", type=int, default=1, help="number of seeds for accuracy runs")
    trace.add_argument("--epochs", type=int, default=8, help="training epochs for accuracy runs")
    trace.add_argument("--scale", type=int, default=4, help="layer down-scaling for simulator runs")
    _add_workers_flag(trace)
    trace.add_argument(
        "--out", default="trace.json", metavar="PATH",
        help="Chrome trace_event JSON output, viewable in Perfetto / "
        "chrome://tracing (default: trace.json)",
    )
    trace.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="also write the run's merged deterministic metrics to PATH as JSON",
    )
    _add_supervision_flags(trace)
    _add_checks_flags(trace, "runtime invariant level for mask/format checking")

    serve = sub.add_parser(
        "serve", help="run the durable simulation job service (repro.service)"
    )
    serve.add_argument(
        "--data-dir", required=True,
        help="service state directory: SQLite run store, shared cell "
        "cache, and the 'endpoint' file advertising the bound URL",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8765,
        help="TCP port; 0 picks a free one (default: 8765)",
    )
    serve.add_argument(
        "--job-workers", type=int, default=1, metavar="N",
        help="concurrent jobs (default: 1)",
    )
    serve.add_argument(
        "--sweep-workers", type=int, default=None, metavar="N",
        help="worker processes per job's sweep (default: $REPRO_SWEEP_WORKERS or 1)",
    )
    serve.add_argument(
        "--queue-size", type=int, default=64,
        help="admission queue bound; beyond it submissions get 429 (default: 64)",
    )
    serve.add_argument(
        "--rate", type=float, default=10.0, metavar="R",
        help="per-client submissions/second (token bucket; 0 disables; default: 10)",
    )
    serve.add_argument(
        "--burst", type=float, default=20.0, metavar="B",
        help="per-client burst allowance (default: 20)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="S",
        help="seconds to wait for running jobs to checkpoint on SIGTERM "
        "(default: 30)",
    )
    serve.add_argument(
        "--allow-fn-prefix", action="append", default=None, metavar="PREFIX",
        help="additionally accept raw-spec job callables under this import "
        "prefix (repeatable; default: only 'repro.')",
    )
    _add_supervision_flags(serve)
    return parser


def _fail(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return 2


def _write_metrics_file(path: str) -> None:
    """Dump the ambient observability registry's deterministic view."""
    import json

    from . import obs

    with open(path, "w", encoding="utf-8") as fh:
        json.dump(obs.metrics_dict(deterministic_only=True), fh, sort_keys=True, indent=2)
        fh.write("\n")


def _maybe_with_metrics(args, body) -> int:
    """Run ``body`` with observability on when ``--metrics PATH`` was given.

    The registry and trace buffer are reset first so the file reflects
    exactly this invocation; the dump happens even when the command
    fails, so a partial run still leaves forensics behind.
    """
    path = getattr(args, "metrics", None)
    if not path:
        return body()
    from . import obs

    obs.reset()
    with obs.enabled_scope():
        rc = body()
        try:
            _write_metrics_file(path)
        except OSError as exc:
            return _fail(f"cannot write metrics to {path!r}: {exc}")
    print(f"[repro] metrics -> {path}", file=sys.stderr)
    return rc


def _sweep_options(args):
    """Build the :class:`repro.sweep.SweepOptions` a command's supervision
    flags describe; raises ``ValueError`` on invalid combinations."""
    from .sweep import SweepOptions

    return SweepOptions(
        executor=getattr(args, "executor", None),
        timeout=getattr(args, "timeout", None),
        retries=getattr(args, "retries", 0) or 0,
    )


def _warn_cell_failures(failures) -> None:
    """One stderr line per failed sweep cell (status + first error line)."""
    for cell in failures:
        error = (cell.error or "").splitlines() or [""]
        print(f"error: cell {cell.key}: {cell.status}: {error[0]}", file=sys.stderr)


def _check_sparsity(value: float) -> Optional[str]:
    if not 0.0 <= value < 1.0:
        return f"sparsity must be in [0, 1), got {value}"
    return None


# ---------------------------------------------------------------------------
# report
# ---------------------------------------------------------------------------


def _render_report(experiment: str, res) -> None:
    """Print one experiment's computed data the way the paper tables read."""
    from .analysis import render_dict_table, render_table

    if experiment == "table1":
        print(render_dict_table(res, key_header="proxy"))
    elif experiment == "table2":
        print(render_dict_table(res, key_header="proxy/criterion"))
    elif experiment == "table3":
        print(render_dict_table(
            {"area_mm2": res["area_mm2"], "power_mw": res["power_mw"]}, key_header="metric"
        ))
    elif experiment == "fig1":
        print(render_table(
            ["design", "EDP", "accuracy"],
            [[p.label, f"{p.cost:.3e}", f"{p.quality:.3f}"] for p in res["points"]],
        ))
        print("frontier:", [p.label for p in res["frontier"]])
    elif experiment == "fig4":
        print(render_dict_table(
            {"similarity_vs_US": res["similarity"], "log2_maskspace": res["log2_maskspace"]},
            key_header="metric",
        ))
    elif experiment == "fig6":
        print(res)
    elif experiment == "fig7":
        print(render_dict_table(res, key_header="workload"))
    elif experiment == "fig7both":
        print(render_dict_table(res, key_header="sparsity/format"))
    elif experiment == "fig12":
        for layer, table in res.items():
            print(render_dict_table(table, key_header=layer))
    elif experiment == "fig13":
        for model, table in res.items():
            print(render_dict_table(table, key_header=model))
    elif experiment == "fig14":
        print(render_dict_table(res, key_header="layer"))
    elif experiment == "fig15":
        print(render_dict_table(
            {f"M={m}": row for m, row in res["block_size"].items()}, key_header="block"
        ))
        print("quantization:", res["quantization"])
        print("bandwidth:", res["bandwidth"])
        print(render_dict_table(
            {f"{s:.0%}": row for s, row in res["sparsity_sweep"].items()}, key_header="sparsity"
        ))
    elif experiment == "fig16":
        print("codec:", res["codec"])
        print(render_dict_table(res["scheduling"], key_header="metric"))
    elif experiment == "fig17":
        print(render_dict_table(res, key_header="layers"))
    elif experiment == "fig18":
        for name, series in res.items():
            print(name, [round(v, 3) for v in series])
    elif experiment == "wide":
        print(render_dict_table(res, key_header="scenario"))
    elif experiment == "scenarios":
        summary = {}
        traffic = {}
        for family, entry in res.items():
            row = {}
            for pattern, stats in entry["patterns"].items():
                row[f"{pattern}_cycles"] = stats["cycles"]
            for pattern, value in entry.get("speedup_vs_dense", {}).items():
                if pattern != "dense":
                    row[f"{pattern}_speedup"] = value
            row["winner"] = entry["cycle_winner"]
            summary[family] = row
            for fmt, orients in entry["formats"].items():
                for orient, fetched in orients.items():
                    traffic[f"{family}/{fmt}/{orient}"] = dict(fetched)
        print(render_dict_table(summary, key_header="family"))
        print(render_dict_table(traffic, key_header="family/format/orientation"))
    else:  # pragma: no cover - choices restrict this
        raise ValueError(experiment)


def _run_report(args) -> int:
    from .analysis.experiments import run_experiment
    from .runtime.runner import ExperimentRunner

    if args.seeds < 1:
        return _fail(f"--seeds must be >= 1, got {args.seeds}")
    if args.retries < 0:
        return _fail(f"--retries must be >= 0, got {args.retries}")
    try:
        options = _sweep_options(args)
    except ValueError as exc:
        return _fail(str(exc))

    runner = ExperimentRunner(
        cache_dir=args.checkpoint_dir, retries=args.retries, resume=args.resume
    )

    # ``workers`` and the sweep options ride in through a wrapper, NOT
    # through ``runner.run`` kwargs: the runner's cache key hashes its
    # kwargs, and execution knobs must never change what a cached
    # experiment is (results are bit-identical at any N).
    def run_with_workers(**kwargs):
        return run_experiment(workers=args.workers, options=options, **kwargs)

    names = _EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    seeds = tuple(range(args.seeds))
    failures = []
    payload = {}
    for name in names:
        kwargs = dict(name=name, seeds=seeds, epochs=args.epochs, scale=args.scale)
        if name == "scenarios" and args.families:
            # Part of what the experiment computes (unlike the execution
            # knobs), so it must participate in the runner's cache key.
            kwargs["families"] = tuple(args.families)
        cell = runner.run(name, run_with_workers, **kwargs)
        suffix = " (cached)" if cell.status == "cached" else ""
        # With --json, stdout carries only the payload.
        print(f"\n--- {name}{suffix} ---", file=sys.stderr if args.json else sys.stdout)
        if not cell.ok:
            print(
                f"error: {name} failed after {cell.attempts} attempt(s): {cell.error}",
                file=sys.stderr,
            )
            failures.append(name)
            continue
        if args.json:
            payload[name] = cell.value
        else:
            _render_report(name, cell.value)
    if args.json:
        import json

        print(json.dumps(
            payload[names[0]] if len(names) == 1 and names[0] in payload else payload,
            sort_keys=True, default=repr,
        ))
    if len(names) > 1:
        print(f"\n[repro] {runner.summary()}", file=sys.stderr if args.json else sys.stdout)
    return 1 if failures else 0


def _run_sweep_cmd(args) -> int:
    import json

    from .analysis.experiments import run_experiment
    from .sweep import SweepCellsFailed, SweepError, configured_workers

    if args.seeds < 1:
        return _fail(f"--seeds must be >= 1, got {args.seeds}")
    try:
        workers = configured_workers(args.workers)
    except SweepError as exc:
        return _fail(str(exc))
    if args.resume and not args.cache_dir:
        return _fail("--resume requires --cache-dir")
    try:
        options = _sweep_options(args)
    except ValueError as exc:
        return _fail(str(exc))
    name = args.experiment
    print(f"[repro] sweep {name}: {workers} worker(s)"
          + (f", cache {args.cache_dir}" + (" (resume)" if args.resume else "")
             if args.cache_dir else "")
          + (f", executor {options.executor}" if options.executor else "")
          + (f", timeout {options.timeout:g}s" if options.timeout else "")
          + (f", retries {options.retries}" if options.retries else ""),
          file=sys.stderr)
    try:
        value = run_experiment(
            name,
            seeds=tuple(range(args.seeds)),
            epochs=args.epochs,
            scale=args.scale,
            workers=workers,
            cache_dir=args.cache_dir,
            resume=args.resume,
            options=options,
            families=tuple(args.families) if args.families else None,
        )
    except ValueError as exc:
        # Driver-level validation (e.g. an unknown --families entry):
        # one line on stderr, cell-failure exit code.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except SweepCellsFailed as exc:
        _warn_cell_failures(exc.failures)
        if not args.allow_partial:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        # The experiment's aggregate needs every cell; with failures
        # tolerated, the settled cells' raw values are the partial data.
        partial = exc.result.values() if exc.result is not None else {}
        print(
            f"[repro] --allow-partial: {len(exc.failures)} cell(s) failed; "
            f"printing {len(partial)} settled cell value(s)",
            file=sys.stderr,
        )
        print(json.dumps(partial, sort_keys=True, default=repr))
        return 0
    except SweepError as exc:
        return _fail(str(exc))
    if args.json:
        print(json.dumps(value, sort_keys=True, default=repr))
    else:
        _render_report(name, value)
    return 0


# ---------------------------------------------------------------------------
# prune / simulate
# ---------------------------------------------------------------------------


def _run_prune(args) -> int:
    from .core.masks import make_mask
    from .core.patterns import PatternFamily, PatternSpec
    from .core.sparsify import tbs_sparsify

    bad = _check_sparsity(args.sparsity)
    if bad:
        return _fail(bad)
    if args.m < 1:
        return _fail(f"--m must be >= 1, got {args.m}")
    try:
        weights = np.load(args.weights)
    except (OSError, ValueError) as exc:
        return _fail(f"cannot read weights {args.weights!r}: {exc}")
    if weights.ndim != 2:
        return _fail(f"expected a 2-D array, got shape {weights.shape}")
    family = PatternFamily[args.pattern]
    if family is PatternFamily.TBS:
        result = tbs_sparsify(weights, m=args.m, sparsity=args.sparsity)
        mask = result.mask
        extra = f", directions {result.direction_histogram()}"
    elif family is PatternFamily.NMT:
        from .core.transposable import transposable_sparsify
        from .core.tsolvers import resolve_tsolver

        mask, _ = transposable_sparsify(
            weights, m=args.m, sparsity=args.sparsity, backend=args.tsolver
        )
        extra = f", solver {resolve_tsolver(args.tsolver)}"
    else:
        mask = make_mask(weights, PatternSpec(family, m=args.m, sparsity=args.sparsity))
        extra = ""
    out = args.out or args.weights.replace(".npy", "") + ".mask.npy"
    try:
        np.save(out, mask)
    except OSError as exc:
        return _fail(f"cannot write mask to {out!r}: {exc}")
    print(f"{args.pattern} mask: sparsity {1 - mask.mean():.1%}{extra} -> {out}")
    return 0


def _run_simulate(args) -> int:
    import json

    from .core.patterns import PatternFamily
    from .sim.baselines import ARCH_FAMILY, arch_by_name, simulate_arch
    from .sim.options import SimOptions
    from .workloads.generator import build_workload
    from .workloads.layers import LayerSpec

    bad = _check_sparsity(args.sparsity)
    if bad:
        return _fail(bad)
    if min(args.rows, args.cols, args.b_cols) < 1:
        return _fail("--rows, --cols and --b-cols must all be >= 1")
    try:
        config = arch_by_name(args.arch)
        options = SimOptions(
            weight_bits=args.weight_bits, fault=args.fault,
            fault_seed=args.fault_seed, tsolver=args.tsolver,
            orientation=args.orientation,
        )
    except ValueError as exc:
        return _fail(str(exc))
    family = ARCH_FAMILY.get(args.arch, PatternFamily.TBS)
    layer = LayerSpec("cli", args.rows, args.cols, args.b_cols)
    workload = build_workload(
        layer, family, args.sparsity, seed=args.seed, tsolver=args.tsolver
    )
    result = simulate_arch(config, workload, options=options)
    if args.json:
        print(json.dumps(result.to_dict(), sort_keys=True))
        return 0
    print(f"{args.arch} on {args.rows}x{args.cols} @ K={args.b_cols}, "
          f"{family.name} {workload.sparsity:.1%} sparse:")
    print(f"  cycles        {result.cycles}")
    print(f"  energy        {result.energy.total_j * 1e6:.3f} uJ")
    print(f"  EDP           {result.edp:.4e} J*s")
    print(f"  compute util  {result.compute_utilization:.1%}")
    print(f"  bandwidth util {result.bandwidth_utilization:.1%}")
    return 0


def _run_faults(args) -> int:
    import json
    from dataclasses import asdict

    from .faults import CampaignSpec, ECCConfig, render_campaign, run_campaign
    from .sweep import SweepCellsFailed, SweepError, configured_workers

    bad = _check_sparsity(args.sparsity)
    if bad:
        return _fail(bad)
    if args.trials < 1:
        return _fail(f"--trials must be >= 1, got {args.trials}")
    ecc = ECCConfig(mode=args.ecc)
    try:
        spec_kwargs = dict(
            trials=args.trials, seed=args.seed, rows=args.rows, cols=args.cols,
            m=args.m, sparsity=args.sparsity, ecc=ecc, check_level=args.checks,
        )
        if args.formats:
            spec_kwargs["formats"] = tuple(args.formats)
        if args.models:
            spec_kwargs["models"] = tuple(args.models)
        spec = CampaignSpec(**spec_kwargs)
        workers = configured_workers(args.workers)
        options = _sweep_options(args)
    except (ValueError, SweepError) as exc:
        return _fail(str(exc))

    try:
        result = run_campaign(
            spec, workers=workers, cache_dir=args.checkpoint_dir,
            resume=args.resume, options=options,
            allow_partial=args.allow_partial,
        )
    except SweepCellsFailed as exc:
        _warn_cell_failures(exc.failures)
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except SweepError as exc:
        return _fail(str(exc))
    if result.failed_cells:
        # Only reachable with --allow-partial (strict raises otherwise).
        for key in result.failed_cells:
            print(f"warning: skipped failed cell {key}", file=sys.stderr)

    if args.json:
        print(json.dumps(
            {
                "spec": asdict(spec),
                "cells": [
                    {
                        "format": c.format_name,
                        "model": c.model,
                        "counts": c.counts,
                        "skipped": c.skipped,
                        "sdc_rate": c.sdc_rate,
                        "coverage": c.coverage,
                    }
                    for c in result.cells
                ],
            },
            sort_keys=True,
        ))
        return 0

    print(f"fault campaign: seed={spec.seed}, {spec.trials} trials/cell, "
          f"{spec.rows}x{spec.cols} TBS @ {spec.sparsity:.0%}, checks={spec.check_level}")
    print(render_campaign(result))
    if args.checkpoint_dir or workers > 1:
        print(f"[repro] {result.sweep_summary}")

    if ecc.enabled:
        _print_ecc_overheads(spec, ecc)
    return 0


def _print_ecc_overheads(spec, ecc) -> None:
    """What the protection costs: check-bit traffic + ECC energy on a
    reference TB-STC layer of the campaign's shape."""
    from .core.patterns import PatternFamily
    from .hw.config import tb_stc
    from .sim.engine import SimOptions, simulate
    from .workloads.generator import build_workload
    from .workloads.layers import LayerSpec

    layer = LayerSpec("ecc-ref", spec.rows, spec.cols, spec.cols)
    workload = build_workload(layer, PatternFamily.TBS, spec.sparsity, seed=spec.seed, m=spec.m)
    result = simulate(tb_stc(), workload, options=SimOptions(ecc=ecc))
    meta = result.breakdown["meta_bytes"]
    extra = result.breakdown["ecc_bytes"]
    ecc_pj = result.energy.components.get("ecc", 0.0)
    print(f"ecc overhead on {layer.rows}x{layer.cols} reference layer: "
          f"+{extra:.0f} B check bits on {meta:.0f} B metadata "
          f"({extra / meta:.1%} of metadata, "
          f"{extra / max(1.0, result.dram_bytes):.3%} of total traffic), "
          f"+{ecc_pj:.2f} pJ ECC energy")


def _run_trace(args) -> int:
    from . import obs
    from .analysis.experiments import run_experiment
    from .sweep import SweepError, configured_workers

    if args.seeds < 1:
        return _fail(f"--seeds must be >= 1, got {args.seeds}")
    try:
        workers = configured_workers(args.workers)
        options = _sweep_options(args)
    except (ValueError, SweepError) as exc:
        return _fail(str(exc))

    obs.reset()
    with obs.enabled_scope():
        try:
            run_experiment(
                args.experiment,
                seeds=tuple(range(args.seeds)),
                epochs=args.epochs,
                scale=args.scale,
                workers=workers,
                options=options,
            )
        except SweepError as exc:
            return _fail(str(exc))
        trace = obs.to_chrome_trace()
        try:
            obs.write_chrome_trace(args.out)
        except OSError as exc:
            return _fail(f"cannot write trace to {args.out!r}: {exc}")
        if args.metrics:
            try:
                _write_metrics_file(args.metrics)
            except OSError as exc:
                return _fail(f"cannot write metrics to {args.metrics!r}: {exc}")
    print(f"trace {args.experiment}: {len(trace['traceEvents'])} events -> {args.out}"
          + (f", metrics -> {args.metrics}" if args.metrics else ""))
    return 0


def _run_perf(args) -> int:
    import os

    from .perf import bench

    if args.tolerance < 0:
        return _fail(f"--tolerance must be >= 0, got {args.tolerance}")
    if args.best_of < 1:
        return _fail(f"--best-of must be >= 1, got {args.best_of}")
    try:
        options = _sweep_options(args)
    except ValueError as exc:
        return _fail(str(exc))
    profile = "quick" if args.quick else args.profile
    data = bench.run_suite_best(
        profile=profile, seed=args.seed, name=args.name, rounds=args.best_of,
        workers=args.workers, options=options,
    )
    out_path = os.path.join(args.out_dir, f"BENCH_{args.name}.json")
    try:
        bench.write_bench_json(out_path, data)
    except OSError as exc:
        return _fail(f"cannot write {out_path!r}: {exc}")
    print(f"bench suite ({profile}, seed {args.seed}): "
          f"{len(data['benches'])} benches, {data['total_wall_s']:.2f} s total, "
          f"peak RSS {data['peak_rss_kb'] / 1024:.0f} MB -> {out_path}")

    if args.trajectory:
        entry = {
            "name": args.name,
            "profile": profile,
            "total_wall_s": data["total_wall_s"],
            "calibration_s": data["calibration_s"],
            "normalized": {
                k: v["normalized"] for k, v in data["benches"].items()
            },
        }
        try:
            bench.append_trajectory(args.trajectory, entry)
        except OSError as exc:
            return _fail(f"cannot append to {args.trajectory!r}: {exc}")
        print(f"appended trajectory entry to {args.trajectory}")

    if args.compare:
        try:
            baseline = bench.load_bench_json(args.compare)
        except (OSError, ValueError, KeyError) as exc:
            return _fail(f"cannot load baseline {args.compare!r}: {exc}")
        failures, lines = bench.compare(data, baseline, tolerance=args.tolerance)
        if failures:
            # One retry filters scheduler noise on loaded CI machines: a
            # genuine regression slows every round, so only benches that
            # stay slow after merging in a second round's best fail.
            print("possible regression -- re-running suite once to filter noise")
            data = bench.merge_best(
                data,
                bench.run_suite(
                    profile=profile, seed=args.seed, name=args.name,
                    workers=args.workers, options=options,
                ),
            )
            try:
                bench.write_bench_json(out_path, data)
            except OSError as exc:
                return _fail(f"cannot write {out_path!r}: {exc}")
            failures, lines = bench.compare(data, baseline, tolerance=args.tolerance)
        print(f"vs {args.compare} (gate: {1 + args.tolerance:.2f}x normalized):")
        for line in lines:
            print(line)
        if failures:
            for failure in failures:
                print(f"error: perf regression: {failure}", file=sys.stderr)
            return 1
        print("perf gate passed")
    return 0


def _run_serve(args) -> int:
    from .service import ServiceConfig, SimService

    try:
        config = ServiceConfig(
            data_dir=args.data_dir,
            host=args.host,
            port=args.port,
            job_workers=args.job_workers,
            sweep_workers=args.sweep_workers,
            queue_size=args.queue_size,
            rate=args.rate or None,
            burst=args.burst or None,
            executor=args.executor,
            timeout=args.timeout,
            retries=args.retries,
            drain_timeout_s=args.drain_timeout,
            allow_fn_prefixes=("repro.", *(args.allow_fn_prefix or ())),
        )
        service = SimService(config)
    except (ValueError, OSError) as exc:
        return _fail(str(exc))
    service.install_signal_handlers()
    try:
        host, port = service.start()
    except OSError as exc:
        return _fail(f"cannot bind {args.host}:{args.port}: {exc}")
    print(f"[repro] simulation service on http://{host}:{port} "
          f"(data dir {args.data_dir})", file=sys.stderr)
    service.serve_forever()  # returns after SIGTERM/SIGINT drain
    print("[repro] service drained; queued/running jobs are resumable",
          file=sys.stderr)
    return 0


def _dispatch(args) -> int:
    if args.command == "report":
        return _maybe_with_metrics(args, lambda: _run_report(args))
    if args.command == "sweep":
        return _maybe_with_metrics(args, lambda: _run_sweep_cmd(args))
    if args.command == "prune":
        return _run_prune(args)
    if args.command == "simulate":
        return _run_simulate(args)
    if args.command == "faults":
        return _maybe_with_metrics(args, lambda: _run_faults(args))
    if args.command == "perf":
        return _run_perf(args)
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "serve":
        return _run_serve(args)
    raise AssertionError("unreachable")  # pragma: no cover


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    # ``faults`` interprets --checks itself (the level the *campaign
    # classification* runs under, threaded through CampaignSpec); every
    # other command applies it as the ambient runtime invariant level.
    level = getattr(args, "checks", None)
    if level and args.command != "faults":
        from .runtime.checks import check_level

        with check_level(level):
            return _dispatch(args)
    return _dispatch(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
