"""Table I -- sparse-training accuracy comparison across patterns.

Paper (ResNet-50/18 at 75%, BERT at 50%): TBS is 0.85%-1.03% more
accurate than the other structured patterns and within 0.17% of US.
Our proxies reproduce the ordering: Dense ~ US >= TBS > {RS-V, RS-H, TS}
on the capacity-tight CNN task, with the average across tasks placing
TBS on top of the structured family.
"""

import numpy as np

from repro.analysis import render_dict_table, run_table1

STRUCTURED = ("TS", "RS_V", "RS_H")


def test_table1(once):
    res = once(run_table1, seeds=(0, 1, 2), epochs=12)
    print()
    print(render_dict_table(res, key_header="proxy task", title="Table I -- accuracy with retraining"))

    for task, row in res.items():
        # Sanity: every configuration actually learned the task.
        assert all(acc > 0.5 for acc in row.values()), task
        # No structured pattern beats dense training by a margin.
        assert row["Dense"] >= max(row[name] for name in STRUCTURED) - 0.05, task

    # On the capacity-tight CNN proxy (the paper's ResNet setting) the
    # full ordering emerges: TBS beats every other structured pattern.
    cnn = res["cnn"]
    for name in STRUCTURED:
        assert cnn["TBS"] >= cnn[name], f"TBS below {name} on the CNN task"
    # ...and stays within a small gap of unstructured (paper: 0.17%).
    assert cnn["US"] - cnn["TBS"] < 0.05

    # Averaged across tasks TBS leads the structured family.
    mean = lambda name: np.mean([row[name] for row in res.values()])
    assert mean("TBS") >= max(mean(name) for name in STRUCTURED) - 0.01
    assert mean("US") - mean("TBS") < 0.04
