"""Micro-architecture ablations beyond the paper's Fig. 16.

DESIGN.md lists three further design choices worth ablating:

* the **alternate unit** (Sec. VI-A1) -- output buffering that absorbs
  multi-result beats from packed issue groups;
* the **scheduler lookahead window** (Fig. 11(b) fetches 2 blocks per
  cycle; the window bounds how far the greedy dispatch can see);
* the **codec queue threshold** (Fig. 9(c) emits once a queue holds two
  elements; the threshold trades queue depth against stalls).
"""

import numpy as np

from repro.core.patterns import PatternFamily
from repro.formats.conversion import StorageElement, convert_block
from repro.hw.config import tb_stc
from repro.hw.dvpe import DVPE
from repro.hw.mapping import BlockWork
from repro.hw.scheduler import schedule_sparsity_aware
from repro.sim.engine import simulate
from repro.workloads.generator import build_workload
from repro.workloads.layers import LayerSpec


def test_alternate_unit(once):
    """Packed issue groups complete several segments per cycle; without
    the alternate unit's buffering the output port stalls the array."""

    def run():
        rng = np.random.default_rng(0)
        with_alt = []
        without = []
        for _ in range(100):
            # Imbalanced segments: many 1-element rows (the COL-block case).
            segs = tuple(int(x) for x in rng.choice([0, 1, 1, 2, 4], size=8))
            work = BlockWork(segs, m=8)
            with_alt.append(DVPE(alternate_unit=True).execute(work).total_cycles)
            without.append(DVPE(alternate_unit=False).execute(work).total_cycles)
        return float(np.sum(without)), float(np.sum(with_alt))

    total_without, total_with = once(run)
    print(f"\ncycles without alternate unit: {total_without:.0f}, with: {total_with:.0f} "
          f"({total_without / total_with:.2f}x)")
    assert total_with <= total_without
    assert total_without / total_with > 1.05  # buffering pays on imbalanced blocks


def test_scheduler_window(once):
    """A larger lookahead window improves the greedy schedule, with
    diminishing returns past a handful of blocks (why 2 fetches/cycle
    into a small buffer suffice)."""

    def run():
        rng = np.random.default_rng(1)
        costs = rng.choice([0, 1, 2, 4, 8], size=512, p=[0.1, 0.35, 0.3, 0.15, 0.1]).tolist()
        return {w: schedule_sparsity_aware(costs, 16, window=w).makespan for w in (1, 2, 4, 8, 32)}

    makespans = once(run)
    print("\nmakespan by window:", makespans)
    # Monotone non-increasing in the window size.
    values = [makespans[w] for w in (1, 2, 4, 8, 32)]
    assert all(a >= b for a, b in zip(values, values[1:]))
    # Diminishing returns: the 8->32 step is no bigger than the 1->4 step.
    assert values[3] - values[4] <= max(1, values[0] - values[2])


def test_codec_threshold(once):
    """Higher output thresholds deepen the queues without improving the
    conversion cycle count -- threshold 2 (the paper's choice) is enough."""

    def run():
        rng = np.random.default_rng(2)
        out = {}
        for threshold in (1, 2, 4):
            cycles = 0
            depth = 0
            for _ in range(50):
                stream = []
                for j in range(8):
                    rows = rng.choice(8, size=2, replace=False)
                    for i in sorted(rows):
                        stream.append(StorageElement(rng.normal() + 5, rid=j, iid=int(i)))
                sched = convert_block(stream, n_queues=8, threshold=threshold)
                cycles += sched.cycles
                depth = max(depth, sched.max_queue_depth)
            out[threshold] = (cycles, depth)
        return out

    results = once(run)
    print("\n(threshold) -> (cycles, max queue depth):", results)
    cycles2, depth2 = results[2]
    cycles4, depth4 = results[4]
    # Threshold 4 buys no conversion speed but needs deeper queues.
    assert cycles4 >= cycles2
    assert depth4 >= depth2


def test_buffer_capacity(once):
    """On-chip buffer size drives the B-reload factor (the tiling term
    in the memory model): halving the buffer must not speed anything up."""

    def run():
        layer = LayerSpec("probe", 1024, 512, 64)
        workload = build_workload(layer, PatternFamily.TBS, 0.75, seed=0, scale=2)
        return {
            kb: simulate(tb_stc(onchip_buffer_kb=kb), workload).memory_cycles
            for kb in (24, 96, 192, 384)
        }

    cycles = once(run)
    print("\nmemory cycles by buffer KB:", cycles)
    values = [cycles[kb] for kb in (24, 96, 192, 384)]
    assert all(a >= b for a, b in zip(values, values[1:]))
    assert values[0] > values[-1]  # small buffers genuinely hurt


def test_dvpe_count_sweep(once):
    """Sec. V: bandwidth utilization "under different numbers of DVPEs".

    More DVPEs shift the layer from compute-bound to memory-bound: total
    cycles shrink until the memory wall, at which point adding PEs only
    lowers compute occupancy."""

    def run():
        layer = LayerSpec("probe", 1024, 512, 64)
        workload = build_workload(layer, PatternFamily.TBS, 0.75, seed=0, scale=2)
        out = {}
        for arrays in (2, 4, 8, 16):
            result = simulate(tb_stc(num_pe_arrays=arrays), workload)
            out[arrays] = {
                "cycles": result.cycles,
                "compute": result.compute_cycles,
                "memory": result.memory_cycles,
            }
        return out

    res = once(run)
    print("\nDVPE-array sweep:", {k: v["cycles"] for k, v in res.items()})
    cycles = [res[a]["cycles"] for a in (2, 4, 8, 16)]
    # More PEs never slow the layer down...
    assert all(a >= b for a, b in zip(cycles, cycles[1:]))
    # ...but the memory wall caps the benefit: the 8->16 gain is smaller
    # than the 2->4 gain.
    assert cycles[2] - cycles[3] < cycles[0] - cycles[1]
    # At the high end the layer is memory-bound.
    assert res[16]["memory"] >= res[16]["compute"]
