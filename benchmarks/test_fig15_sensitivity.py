"""Fig. 15 -- sensitivity studies: block size, quantization, bandwidth,
sparsity degree (vs SGCN).

Paper: (a) speedup flattens as M grows while accuracy drops
(94.91% -> 93.82%), justifying M = 8; (b) W8 quantization adds
1.33-1.39x speedup at <=0.41% accuracy cost; (c) bandwidth saturates
above 256 GB/s; (d) TB-STC wins 1.32x on average for 30-90% sparsity
but SGCN overtakes at ~95%.
"""

import numpy as np

from repro.analysis import (
    render_dict_table,
    run_fig15_bandwidth,
    run_fig15_block_size,
    run_fig15_quantization,
    run_fig15_sparsity_sweep,
)


def test_fig15a_block_size(once):
    res = once(run_fig15_block_size, block_sizes=(4, 8, 16, 32), scale=2, epochs=10)
    print()
    print(render_dict_table({f"M={m}": row for m, row in res.items()}, key_header="block", title="Fig. 15(a)"))

    speedups = [res[m]["speedup"] for m in (4, 8, 16, 32)]
    # Speedup gains flatten with larger blocks: the step from 16->32 is
    # no larger than the step from 4->8.
    assert abs(speedups[3] - speedups[2]) <= abs(speedups[1] - speedups[0]) + 0.25
    # Accuracy does not improve with big blocks (paper: it degrades).
    assert res[32]["accuracy"] <= res[8]["accuracy"] + 0.03


def test_fig15b_quantization(once):
    res = once(run_fig15_quantization, epochs=10, scale=2)
    print()
    print({k: round(v, 4) for k, v in res.items()})
    # Extra speedup from INT8 weights (paper: 1.33-1.39x when
    # memory-bound; bounded by 2x).
    assert 1.0 < res["extra_speedup"] <= 2.0
    # Negligible accuracy impact (paper: <=0.41%).
    assert res["accuracy_drop"] < 0.05


def test_fig15c_bandwidth(once):
    res = once(run_fig15_bandwidth, bandwidths=(32, 64, 128, 256, 512), scale=2)
    print()
    print({bw: round(v, 3) for bw, v in res.items()})
    values = list(res.values())
    # Monotone speedup with bandwidth...
    assert values == sorted(values)
    assert res[256] > res[64] > res[32]
    # ...but saturating: the 256->512 step is much smaller than 64->256
    # (paper: no further acceleration beyond 256 GB/s).
    assert res[512] - res[256] < 0.25 * (res[256] - res[64]) + 1e-9


def test_fig15d_sparsity_vs_sgcn(once):
    res = once(run_fig15_sparsity_sweep, sparsities=(0.3, 0.5, 0.7, 0.8, 0.9, 0.95), scale=2)
    print()
    print(render_dict_table({f"{s:.0%}": row for s, row in res.items()}, key_header="sparsity", title="Fig. 15(d)"))

    mid = [res[s]["tb_over_sgcn"] for s in (0.3, 0.5, 0.7, 0.8, 0.9)]
    # TB-STC wins across the 30-90% range (paper: 1.32x average).
    assert np.mean(mid) > 1.0
    # SGCN's high-sparsity specialisation closes the gap at 95%: its
    # relative position improves monotonically-ish toward high sparsity.
    assert res[0.95]["tb_over_sgcn"] < np.mean(mid)
    assert res[0.95]["tb_over_sgcn"] < res[0.5]["tb_over_sgcn"]
