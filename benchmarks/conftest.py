"""Shared benchmark configuration.

Every benchmark regenerates one paper table/figure: it runs the
experiment driver once (timed by pytest-benchmark), prints the rows the
paper reports, and asserts the qualitative shape (who wins, roughly by
how much).  Absolute numbers differ from the paper -- our substrate is a
Python model, not the authors' RTL/testbed -- but orderings and
crossovers are asserted.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Time one full harness execution (no warmup repetition)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _runner
