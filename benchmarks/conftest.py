"""Shared benchmark configuration.

Every benchmark regenerates one paper table/figure: it runs the
experiment driver once (timed by pytest-benchmark), prints the rows the
paper reports, and asserts the qualitative shape (who wins, roughly by
how much).  Absolute numbers differ from the paper -- our substrate is a
Python model, not the authors' RTL/testbed -- but orderings and
crossovers are asserted.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import os
import time

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--perf-record",
        default=None,
        metavar="JSONL",
        help="append each figure benchmark's wall time to this bench-trajectory file",
    )
    parser.addoption(
        "--sweep-workers",
        type=int,
        default=None,
        metavar="N",
        help="shard grid-shaped experiment drivers across N worker processes "
        "(sets REPRO_SWEEP_WORKERS; results are identical at any N)",
    )


def pytest_configure(config):
    workers = config.getoption("--sweep-workers")
    if workers:
        os.environ["REPRO_SWEEP_WORKERS"] = str(workers)


def run_once(benchmark, fn, *args, **kwargs):
    """Time one full harness execution (no warmup repetition).

    Set ``REPRO_BENCH_CACHE=<dir>`` to route every experiment through
    the fault-tolerant runner (:mod:`repro.runtime.runner`): completed
    cells are cached on disk, so an interrupted ``pytest benchmarks/``
    sweep resumes from where it died instead of recomputing everything.
    Cached cells report the (fast) cache-read time.
    """
    cache_dir = os.environ.get("REPRO_BENCH_CACHE")
    if not cache_dir:
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    from repro.runtime.runner import ExperimentRunner

    runner = ExperimentRunner(cache_dir=cache_dir, retries=0, resume=True)
    name = getattr(fn, "__name__", "bench")

    def cached(*a, **kw):
        cell = runner.run(name, lambda **_: fn(*a, **kw), key=repr((a, sorted(kw.items()))))
        if not cell.ok:
            raise RuntimeError(cell.error)
        return cell.value

    return benchmark.pedantic(cached, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark, request):
    record_path = request.config.getoption("--perf-record")

    def _runner(fn, *args, **kwargs):
        t0 = time.perf_counter()
        result = run_once(benchmark, fn, *args, **kwargs)
        if record_path:
            from repro.perf.bench import append_trajectory
            from repro.sweep import configured_workers

            append_trajectory(
                record_path,
                {
                    "kind": "figure-benchmark",
                    "test": request.node.nodeid,
                    "fn": getattr(fn, "__name__", "bench"),
                    "wall_s": time.perf_counter() - t0,
                    "workers": configured_workers(),
                },
            )
        return result

    return _runner
