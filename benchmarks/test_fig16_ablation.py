"""Fig. 16 -- ablations of the two architectural contributions.

Paper: (a) without the adaptive codec/DDC stack, other storage formats
run the TBS model >=1.44x slower; (b) hierarchical sparsity-aware
scheduling lifts computation utilization 1.57x over direct mapping, and
the element-level DVPE+FAN alternative lands at 1.61x worse EDP.
"""

from repro.analysis import render_dict_table, run_fig16_codec_ablation, run_fig16_scheduling_ablation


def test_fig16a_codec(once):
    res = once(run_fig16_codec_ablation, scale=2)
    print()
    print({k: round(v, 2) for k, v in res.items()})

    assert res["TB-STC (DDC+codec)"] == 1.0
    # Every codec-less storage stack is slower on the TBS model
    # (paper: the gap exceeds 1.44x for the baseline architectures).
    others = {k: v for k, v in res.items() if k != "TB-STC (DDC+codec)"}
    assert all(v > 1.0 for v in others.values())
    assert max(others.values()) > 1.44
    # CSR (non-contiguous) is the worst of the compressed options.
    assert res["CSR no codec"] > res["SDC no codec"]


def test_fig16b_scheduling(once):
    res = once(run_fig16_scheduling_ablation, scale=2)
    print()
    print(render_dict_table(res, key_header="metric", title="Fig. 16(b)"))

    util = res["utilization"]
    # Sparsity-aware scheduling lifts utilization substantially
    # (paper: 1.57x average).
    assert util["gain"] > 1.4
    assert util["scheduled"] > util["non_scheduled"]
    # The FAN alternative burns energy for no speed benefit
    # (paper: 1.61x worse EDP than the DVPE).
    assert res["fan_edp"]["normalized"] > 1.3
