"""Fig. 13 -- end-to-end iso-accuracy speedup and normalized EDP.

Paper: at equal accuracy the flexible TBS pattern runs sparser models,
so TB-STC gains 1.22x speedup / 1.62x EDP over HighLight and 1.06x /
1.92x over RM-STC on ResNet-50, BERT and OPT-6.7B inference.
"""

import numpy as np

from repro.analysis import render_dict_table, run_fig13_end2end


def test_fig13(once):
    res = once(run_fig13_end2end, models=("resnet50", "bert", "opt-6.7b"), scale=8)
    for model, table in res.items():
        print()
        print(render_dict_table(table, key_header=model, title=f"Fig. 13 -- {model} end-to-end"))

    for model, table in res.items():
        speedups = table["speedup"]
        edps = table["edp"]
        # TB-STC is at worst in a statistical tie for fastest (paper:
        # only 1.06x over RM-STC; memory-bound CNN layers tie them).
        assert speedups["TB-STC"] >= 0.95 * max(speedups.values()), model
        # TB-STC has the lowest normalized EDP on every model -- the
        # paper's headline metric.
        assert edps["TB-STC"] == min(edps.values()), model

    # Iso-accuracy amplifies the gap over the structured baselines
    # because TBS runs the sparser model (paper: 1.22x over HighLight).
    gains = [res[m]["speedup"]["TB-STC"] / res[m]["speedup"]["HighLight"] for m in res]
    assert np.mean(gains) > 1.1

    # RM-STC remains the closest in speed but clearly worse in EDP
    # (paper: 1.92x; our energy model is DRAM-heavier, so the gap is
    # smaller but consistently above 1.1x).
    edp_gap = [res[m]["edp"]["RM-STC"] / res[m]["edp"]["TB-STC"] for m in res]
    assert np.mean(edp_gap) > 1.1
