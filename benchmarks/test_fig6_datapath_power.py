"""Fig. 6(d) -- datapath power: RM-STC's unstructured machinery vs TB-STC.

Paper: RM-STC's gather/union modules burden the datapath; TB-STC's
TBS-specific units are far cheaper (and only 1.57% vs ~1.8% A100 area).
"""

import pytest

from repro.analysis import run_fig6_datapath_power
from repro.hw.area import a100_overhead_percent
from repro.hw.config import tb_stc


def test_fig6(once):
    res = once(run_fig6_datapath_power)
    print()
    print(f"TB-STC datapath power: {res['TB-STC_mw']:.2f} mW")
    print(f"RM-STC datapath power: {res['RM-STC_mw']:.2f} mW  ({res['ratio']:.2f}x)")

    # The unstructured datapath costs substantially more power.
    assert res["ratio"] > 1.5
    # TB-STC itself stays on the Table III budget.
    assert res["TB-STC_mw"] == pytest.approx(200.59, rel=0.01)
    # Area ordering: TB-STC (1.57%) adds less than RM-STC-style overhead
    # (paper: about 1.8%).
    assert a100_overhead_percent(tb_stc()) < 1.8
