"""Table II -- one-shot pruning accuracy (Wanda / SparseGPT criteria).

Paper (OPT-6.7B / Llama2-7B at 50%): TBS improves average accuracy by
2.58% over TS and narrows the structured-vs-unstructured gap from
2.58-3.24% down to 0.66%.

Our proxies: dense-trained linear/attention networks pruned one-shot
(no retraining) under both criteria.  At proxy scale the per-pattern
deltas sit near the test-set resolution, so the assertions are
noise-robust: TBS's gap to US is never worse than the structured
family's worst gap, TBS beats the weakest structured pattern, and the
ordering is reproduced under *both* criteria (the orthogonality claim).
The clean, high-resolution separation evidence lives in the Fig. 4
mask-similarity benchmark, which measures the same mechanism without
training noise.
"""

import numpy as np

from repro.analysis import render_dict_table, run_table2

STRUCTURED = ("TS", "RS_V", "RS_H")


def test_table2(once):
    res = once(
        run_table2,
        tasks=(("mlp", 0.625), ("encoder", 0.5)),
        criteria=("wanda", "sparsegpt"),
        seeds=(0, 1, 2, 3),
        epochs=12,
    )
    print()
    print(render_dict_table(res, key_header="proxy/criterion", title="Table II -- one-shot pruning accuracy"))

    mean = lambda name: float(np.mean([row[name] for row in res.values()]))
    means = {name: mean(name) for name in ("Dense", "US", "TBS") + STRUCTURED}
    print("means:", {k: round(v, 4) for k, v in means.items()})

    # Everything still works after one-shot pruning (linear proxies do
    # not collapse the way BN-coupled convolutions would).
    assert all(acc > 0.6 for row in res.values() for acc in row.values())

    # The structured-vs-unstructured gap: TBS is never the worst
    # structured pattern, and its gap to US stays small (paper: 0.66%).
    gap = lambda name: means["US"] - means[name]
    assert gap("TBS") <= max(gap(name) for name in STRUCTURED) + 1e-9
    assert gap("TBS") < 0.05

    # TBS stays within noise of the best structured pattern and clearly
    # above the weakest one.
    assert means["TBS"] >= max(means[name] for name in STRUCTURED) - 0.02
    assert means["TBS"] > min(means[name] for name in STRUCTURED)

    # Orthogonality: the same relations hold under each criterion alone.
    for criterion in ("wanda", "sparsegpt"):
        crit_mean = lambda name: float(
            np.mean([row[name] for key, row in res.items() if key.endswith(criterion)])
        )
        assert crit_mean("TBS") >= max(crit_mean(name) for name in STRUCTURED) - 0.03
        assert crit_mean("US") - crit_mean("TBS") < 0.06
