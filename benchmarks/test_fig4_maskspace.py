"""Fig. 4(b)/(c) -- mask similarity with US and mask-space hierarchy.

Paper: TBS reaches 85.31%-91.62% similarity with the unstructured mask,
far above TS/RS; the mask-space ordering is TS <= RS-V ~ RS-H < TBS < US.
"""

from repro.analysis import render_dict_table, run_fig4_maskspace


def test_fig4(once):
    res = once(run_fig4_maskspace)
    print()
    print(render_dict_table(
        {"similarity_vs_US": res["similarity"], "log2_maskspace": res["log2_maskspace"]},
        key_header="metric",
        title="Fig. 4 -- mask similarity (75% sparsity) and mask-space (64x64, M=8)",
    ))

    sim = res["similarity"]
    # TBS is the closest structured pattern to US (Fig. 4(b)).
    assert sim["TBS"] == max(sim.values())
    # ...and lands in the paper's 85%+ band on realistic weights.
    assert sim["TBS"] > 0.85

    ms = res["log2_maskspace"]
    # Mask-space hierarchy (Fig. 4(c)).
    assert ms["TS"] <= ms["RS-V"] < ms["TBS"] < ms["US"]
