"""Fig. 12 -- layer-wise speedup and normalized EDP vs sparsity degree.

Paper: averaged over the ResNet-50/BERT layers and sparsity degrees,
TB-STC is 1.55x / 1.29x / 1.21x / 1.06x faster than STC / VEGETA /
HighLight / RM-STC, improves EDP 1.41x over HighLight and 1.75x over
RM-STC.  We assert the ordering and that the ratios land in the right
bands.
"""

import numpy as np

from repro.analysis import render_dict_table, run_fig12_layerwise
from repro.workloads import bert_layers, resnet50_layers


def test_fig12(once):
    layers = [resnet50_layers()[8], bert_layers()[2]]
    res = once(run_fig12_layerwise, layers=layers, sparsities=(0.5, 0.625, 0.75, 0.875), scale=2)
    for layer_name, table in res.items():
        print()
        print(render_dict_table(table, key_header=layer_name, title=f"Fig. 12 -- {layer_name}"))

    speedup_ratio = {n: [] for n in ("STC", "VEGETA", "HighLight", "RM-STC")}
    edp_ratio = {n: [] for n in ("STC", "VEGETA", "HighLight", "RM-STC")}
    for table in res.values():
        for key, row in table.items():
            if key.startswith("speedup@"):
                for name in speedup_ratio:
                    speedup_ratio[name].append(row["TB-STC"] / row[name])
            elif key.startswith("edp@"):
                for name in edp_ratio:
                    edp_ratio[name].append(row[name] / row["TB-STC"])

    means = {n: float(np.mean(v)) for n, v in speedup_ratio.items()}
    print("\nTB-STC mean speedup over baselines:", {k: round(v, 2) for k, v in means.items()})

    # TB-STC is the fastest design on average against every baseline
    # (paper: 1.55x/1.29x/1.21x/1.06x).
    for name, ratio in means.items():
        assert ratio > 1.0, f"TB-STC not faster than {name}"
    # RM-STC is the closest competitor in raw speed.
    assert means["RM-STC"] == min(means.values())
    assert means["RM-STC"] < 1.4

    edp_means = {n: float(np.mean(v)) for n, v in edp_ratio.items()}
    print("baseline EDP / TB-STC EDP:", {k: round(v, 2) for k, v in edp_means.items()})
    # TB-STC improves EDP over every baseline; RM-STC pays the
    # unstructured energy premium despite similar speed (paper: 1.75x).
    for name, ratio in edp_means.items():
        assert ratio > 1.0, f"TB-STC EDP not better than {name}"
    assert edp_means["RM-STC"] > 1.2
