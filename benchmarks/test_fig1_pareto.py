"""Fig. 1 -- the accuracy-EDP Pareto frontier.

Paper: TB-STC's points dominate the baselines' -- it offers the best
accuracy at any EDP budget on the BERT/sst-2 workload.  We reproduce
with the encoder proxy: TB-STC must contribute to the frontier and no
TB-STC point may be dominated by any *other* design's point.
"""

from repro.analysis import render_table, run_fig1_pareto
from repro.analysis.pareto import dominates, hypervolume_2d


def test_fig1(once):
    res = once(run_fig1_pareto, seeds=(0, 1), sparsities=(0.5, 0.75), epochs=10, scale=4)
    points = res["points"]
    frontier = res["frontier"]
    print()
    print(render_table(
        ["design", "EDP (J*s)", "accuracy"],
        [[p.label, f"{p.cost:.3e}", f"{p.quality:.3f}"] for p in sorted(points, key=lambda p: p.cost)],
        title="Fig. 1 -- accuracy vs EDP design points",
    ))
    print("frontier:", [p.label for p in frontier])

    # TB-STC contributes to the Pareto frontier.
    assert any(p.label.startswith("TB-STC") for p in frontier)

    # No TB-STC point is dominated by a non-TB-STC point.
    tb_points = [p for p in points if p.label.startswith("TB-STC")]
    others = [p for p in points if not p.label.startswith("TB-STC")]
    for tb in tb_points:
        assert not any(dominates(o, tb) for o in others), tb.label

    # The TB-STC frontier dominates more area than any single baseline's.
    ref_cost = max(p.cost for p in points) * 1.01
    hv_tb = hypervolume_2d(tb_points, ref_cost)
    for name in ("STC", "VEGETA", "HighLight", "RM-STC"):
        base_points = [p for p in points if p.label.startswith(name)]
        assert hv_tb >= hypervolume_2d(base_points, ref_cost), name
