"""Sec. V / Fig. 7 -- storage-format bandwidth utilization on TBS.

Paper: SDC wastes >61.54% of traffic on padding, CSR stays below 38.2%
utilization, and the DDC + adaptive codec reaches a 1.47x average
bandwidth-utilization improvement.
"""

import numpy as np

from repro.analysis import render_dict_table, run_fig7_bandwidth


def test_fig7(once):
    res = once(run_fig7_bandwidth, sparsities=(0.5, 0.75, 0.875), size=256)
    print()
    print(render_dict_table(res, key_header="workload", title="Fig. 7 -- bandwidth utilization per format"))

    gains = []
    for row in res.values():
        # DDC beats every baseline format at every sparsity degree.
        assert row["ddc"] > row["sdc"]
        assert row["ddc"] > row["csr"]
        assert row["ddc"] > row["dense"]
        gains.append(row["ddc"] / max(row["sdc"], row["csr"]))

    # Average improvement at least the paper's 1.47x.
    assert np.mean(gains) >= 1.47

    # CSR fragmentation keeps it under 50% utilization (paper: <38.2%).
    assert all(row["csr"] < 0.5 for row in res.values())
