"""Fig. 18 -- training-loss convergence: dense vs US vs TBS.

Paper: TBS training converges to almost the same loss as dense
training; US needs more training overhead (larger search space).
"""

from repro.analysis import run_fig18_convergence


def test_fig18(once):
    curves = once(run_fig18_convergence, task="mlp", sparsity=0.75, epochs=14, seed=0)
    print()
    for name in ("dense", "US", "TBS"):
        head = ", ".join(f"{v:.3f}" for v in curves[name][:4])
        print(f"{name:6s} loss: [{head}, ...] -> {curves[name][-1]:.4f}")

    dense_final = curves["dense"][-1]
    tbs_final = curves["TBS"][-1]
    us_final = curves["US"][-1]

    # Everyone converges (loss decreases substantially).
    for name in ("dense", "US", "TBS"):
        assert curves[name][-1] < 0.5 * curves[name][0]

    # TBS reaches almost the dense loss (paper: "almost the same loss").
    assert tbs_final < dense_final + 0.25
    # Sparse runs cannot beat dense by a margin.
    assert min(tbs_final, us_final) > dense_final - 0.05

    # The TBS sparsity schedule reaches and holds the target.
    sparsity = curves["TBS_sparsity"]
    assert abs(sparsity[-1] - 0.75) < 0.08
