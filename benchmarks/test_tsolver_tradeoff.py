"""Transposable-solver tradeoff: speed and quality across block sizes.

Not a paper figure -- this benchmark pins the quality-vs-speed contract
of the :mod:`repro.core.tsolvers` backends across M in {4, 8, 16, 32,
64}:

* **quality**: retained |score| against the ``exact`` min-cost-flow
  oracle wherever exact is tractable (small batches up to M=32); the
  ``tsenor`` Sinkhorn backend must stay within 1% of exact, ``greedy``
  within 3%.  At M=64 exact is impractical, so tsenor is held against
  greedy instead -- precisely the regime the wide one-shot experiment
  (``repro report wide``) exists for.
* **speed**: tsenor must be >= 5x faster than greedy on M=32 block
  batches (the shape the batched backend was built for), and still
  >= 3.5x ahead at M=64 where the rounding work grows as M^2.
"""

import time

import numpy as np

from repro.core.tsolvers import solve_blocks

#: (m, n, exact batch, speed batch) per block size; exact_b = 0 skips
#: the oracle (intractable at that size).
_CASES = [
    (4, 2, 64, 1024),
    (8, 3, 48, 512),
    (16, 6, 16, 256),
    (32, 12, 6, 256),
    (64, 24, 0, 64),
]


def _retained(scores, masks):
    return float((scores * masks).sum())


def _best_times(fns, rounds=5):
    """Best-of-N wall time for each callable, rounds interleaved so both
    sides sample the same machine-load conditions."""
    best = [float("inf")] * len(fns)
    for _ in range(rounds):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


def test_tsolver_tradeoff(once):
    def run():
        rows = []
        for m, n, exact_b, speed_b in _CASES:
            rng = np.random.default_rng(1000 + m)
            quality = rng.normal(size=(max(exact_b, 8), m, m))
            quality = np.abs(quality)
            greedy_q = _retained(quality, solve_blocks(quality, n, backend="greedy"))
            tsenor_q = _retained(quality, solve_blocks(quality, n, backend="tsenor"))
            if exact_b:
                exact_q = _retained(quality, solve_blocks(quality, n, backend="exact"))
            else:
                exact_q = None

            speed = np.abs(rng.normal(size=(speed_b, m, m)))
            greedy_s, tsenor_s = _best_times(
                [
                    lambda: solve_blocks(speed, n, backend="greedy"),
                    lambda: solve_blocks(speed, n, backend="tsenor"),
                ]
            )
            rows.append(
                {
                    "m": m,
                    "n": n,
                    "greedy_vs_exact": greedy_q / exact_q if exact_q else None,
                    "tsenor_vs_exact": tsenor_q / exact_q if exact_q else None,
                    "tsenor_vs_greedy_quality": tsenor_q / greedy_q,
                    "speedup": greedy_s / tsenor_s,
                    "greedy_ms": greedy_s * 1e3,
                    "tsenor_ms": tsenor_s * 1e3,
                }
            )
        return rows

    rows = once(run)

    print("\nM    N   greedy/exact  tsenor/exact  tsenor/greedy  speedup")
    for r in rows:
        ge = f"{r['greedy_vs_exact']:.4f}" if r["greedy_vs_exact"] else "   -- "
        te = f"{r['tsenor_vs_exact']:.4f}" if r["tsenor_vs_exact"] else "   -- "
        print(
            f"{r['m']:<4} {r['n']:<3} {ge:>12}  {te:>12}  "
            f"{r['tsenor_vs_greedy_quality']:>12.4f}  {r['speedup']:6.1f}x "
            f"({r['greedy_ms']:.1f} -> {r['tsenor_ms']:.1f} ms)"
        )

    by_m = {r["m"]: r for r in rows}
    # Quality: tsenor within 1% of exact everywhere the oracle runs,
    # greedy within 3% (its small-M gap is real -- see the solver tests).
    for r in rows:
        if r["tsenor_vs_exact"] is not None:
            assert r["tsenor_vs_exact"] >= 0.99, r
            assert r["greedy_vs_exact"] >= 0.97, r
    # At M=64 (no oracle) tsenor must stay within 2% of greedy.
    assert by_m[64]["tsenor_vs_greedy_quality"] >= 0.98

    # Speed: the batched Sinkhorn backend's reason to exist.
    assert by_m[32]["speedup"] >= 5.0, by_m[32]
    assert by_m[64]["speedup"] >= 3.5, by_m[64]
    # Exact (where run) never loses to either heuristic.
    for r in rows:
        if r["tsenor_vs_exact"] is not None:
            assert r["tsenor_vs_exact"] <= 1.0 + 1e-9
            assert r["greedy_vs_exact"] <= 1.0 + 1e-9
