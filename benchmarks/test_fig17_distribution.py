"""Fig. 17 -- distribution of block-level sparsity directions.

Paper (TBS-pruned ResNet-50): 18.7% of blocks are row-direction, 46.0%
column-direction, 35.3% other (empty/dense) -- i.e. a single-dimension
pattern could not express most of the model.
"""

import pytest

from repro.analysis import render_dict_table, run_fig17_distribution


def test_fig17(once):
    res = once(run_fig17_distribution, sparsities=(0.5, 0.75, 0.875))
    print()
    print(render_dict_table(res, key_header="layer group", title="Fig. 17 -- block direction distribution"))

    total = res["Total"]
    assert sum(total.values()) == pytest.approx(1.0)

    # Both directions are exercised -- a one-dimensional pattern would
    # misrepresent a large share of blocks (the paper's core argument).
    assert total["row"] > 0.05
    assert total["col"] > 0.05
    # Column-direction blocks dominate row-direction ones (paper:
    # 46.0% vs 18.7%).
    assert total["col"] > total["row"]
    # Trivial (empty/dense) blocks exist at realistic sparsity.
    assert total["other"] > 0.02
    # The distribution shifts with sparsity degree (paper's observation
    # that block-level pattern correlates with sparsity).
    low = res["sparsity=50%"]
    high = res["sparsity=88%"]
    assert low != high
