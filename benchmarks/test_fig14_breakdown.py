"""Fig. 14 -- execution-cycle breakdown of the BERT layer GEMMs.

Paper: the codec's format conversion hides inside the pipeline; its
visible share averages only 3.57% of execution.
"""

import numpy as np

from repro.analysis import render_dict_table, run_fig14_breakdown


def test_fig14(once):
    res = once(run_fig14_breakdown, scale=2)
    print()
    print(render_dict_table(res, key_header="BERT layer", title="Fig. 14 -- cycle breakdown"))

    fractions = [row["codec_fraction"] for row in res.values()]
    # Format conversion is essentially hidden (paper: 3.57% average).
    assert np.mean(fractions) < 0.08
    assert max(fractions) < 0.15

    for layer, row in res.items():
        shares = {k: v for k, v in row.items() if k != "codec_fraction"}
        assert sum(shares.values()) == np.float64(1.0) or abs(sum(shares.values()) - 1.0) < 1e-6, layer
        # Compute or exposed memory dominates; never the codec.
        assert row["format_conversion"] < row["compute"] + row["memory_exposed"], layer
