"""Table III -- area and power breakdown of TB-STC.

Paper values: DVPE array 1.43 mm^2 / 197.71 mW, codec 0.03 mm^2 /
2.19 mW, MBD 0.01 mm^2 / 0.69 mW, total 1.47 mm^2 / 200.59 mW at 1 GHz,
and a 1.57% area overhead when integrated at A100 scale.
"""

import pytest

from repro.analysis import render_dict_table, run_table3


def test_table3(once):
    res = once(run_table3)
    print()
    print(render_dict_table(
        {"area_mm2": res["area_mm2"], "power_mw": res["power_mw"]},
        key_header="metric",
        title="Table III -- TB-STC area and power breakdown",
    ))

    area = res["area_mm2"]
    power = res["power_mw"]
    # Component totals match the paper within 1%.
    assert area["Total"] == pytest.approx(1.47, rel=0.01)
    assert power["Total"] == pytest.approx(200.59, rel=0.01)
    # The DVPE array dominates both budgets (97.28% / 98.57%).
    assert area["DVPE Array"] / area["Total"] > 0.95
    assert power["DVPE Array"] / power["Total"] > 0.97
    # A100-scale integration: 1.57% of the die.
    assert res["a100_overhead_percent"]["value"] == pytest.approx(1.57, rel=0.02)
